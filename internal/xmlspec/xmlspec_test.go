package xmlspec

import (
	"strings"
	"testing"

	"repro/internal/operators"
)

// smallDatapath builds a minimal valid datapath: a counter-style loop
// register incremented by a constant, with a comparison status.
func smallDatapath() *Datapath {
	return &Datapath{
		Name:  "count",
		Width: 32,
		Operators: []Operator{
			{ID: "c1", Type: "const", Value: 1},
			{ID: "c10", Type: "const", Value: 10},
			{ID: "r_i", Type: "reg"},
			{ID: "add0", Type: "add"},
			{ID: "lt0", Type: "lt"},
		},
		Connections: []Connection{
			{From: "r_i.q", To: "add0.a"},
			{From: "c1.y", To: "add0.b"},
			{From: "add0.y", To: "r_i.d"},
			{From: "r_i.q", To: "lt0.a"},
			{From: "c10.y", To: "lt0.b"},
		},
		Controls: []Control{
			{Name: "en_i", Targets: []ControlTo{{Port: "r_i.en"}}},
		},
		Statuses: []Status{
			{Name: "i_lt_10", From: "lt0.y"},
		},
	}
}

func smallFSM() *FSM {
	return &FSM{
		Name:    "count_ctl",
		Inputs:  []FSMSignal{{Name: "i_lt_10"}},
		Outputs: []FSMSignal{{Name: "en_i"}, {Name: "done"}},
		States: []State{
			{
				Name: "S0", Initial: true,
				Assigns:     []Assign{{Signal: "en_i", Value: 1}},
				Transitions: []Transition{{Cond: "i_lt_10", Next: "S0"}, {Next: "END"}},
			},
			{
				Name: "END", Final: true,
				Assigns: []Assign{{Signal: "done", Value: 1}},
			},
		},
	}
}

func smallRTG() *RTG {
	return &RTG{
		Name:  "count",
		Start: "cfg0",
		Configurations: []Configuration{
			{ID: "cfg0", Datapath: "count", FSM: "count_ctl"},
		},
	}
}

func TestDatapathRoundTrip(t *testing.T) {
	dp := smallDatapath()
	doc, err := Marshal(dp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDatapath(doc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != dp.Name || len(back.Operators) != len(dp.Operators) ||
		len(back.Connections) != len(dp.Connections) ||
		len(back.Controls) != len(dp.Controls) || len(back.Statuses) != len(dp.Statuses) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if back.Controls[0].Targets[0].Port != "r_i.en" {
		t.Fatalf("nested control target lost: %+v", back.Controls[0])
	}
}

func TestFSMRoundTrip(t *testing.T) {
	f := smallFSM()
	doc, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseFSM(doc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != f.Name || len(back.States) != 2 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	s0, ok := back.FindState("S0")
	if !ok || !s0.Initial || len(s0.Transitions) != 2 || s0.Transitions[0].Cond != "i_lt_10" {
		t.Fatalf("state S0 mismatch: %+v", s0)
	}
	if ini, ok := back.InitialState(); !ok || ini.Name != "S0" {
		t.Fatal("initial state lookup failed")
	}
}

func TestRTGRoundTrip(t *testing.T) {
	r := &RTG{
		Name:  "fdct2",
		Start: "cfg1",
		Memories: []SharedMemory{
			{ID: "m_in", Depth: 4096},
			{ID: "m_tmp", Depth: 4096, Width: 16},
		},
		Configurations: []Configuration{
			{ID: "cfg1", Datapath: "p1", FSM: "f1"},
			{ID: "cfg2", Datapath: "p2", FSM: "f2"},
		},
		Transitions: []RTGTransition{{From: "cfg1", To: "cfg2", On: "done"}},
	}
	doc, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseRTG(doc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Successor("cfg1") != "cfg2" || back.Successor("cfg2") != "" {
		t.Fatal("successor lookup wrong")
	}
	if m, ok := back.FindMemory("m_tmp"); !ok || m.MemWidth() != 16 {
		t.Fatal("memory lookup wrong")
	}
	if m, ok := back.FindMemory("m_in"); !ok || m.MemWidth() != 32 {
		t.Fatal("default width wrong")
	}
}

func TestValidateDatapathAcceptsGood(t *testing.T) {
	if err := ValidateDatapath(smallDatapath(), operators.DefaultRegistry()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDatapathProblems(t *testing.T) {
	reg := operators.DefaultRegistry()
	cases := []struct {
		name   string
		mutate func(*Datapath)
		expect string
	}{
		{"unknown type", func(d *Datapath) { d.Operators[0].Type = "frobnicate" }, "unknown type"},
		{"duplicate id", func(d *Datapath) { d.Operators[1].ID = "c1" }, "duplicate operator id"},
		{"unknown instance", func(d *Datapath) { d.Connections[0].To = "nope.a" }, "unknown instance"},
		{"unknown port", func(d *Datapath) { d.Connections[0].To = "add0.zz" }, "no port"},
		{"direction", func(d *Datapath) { d.Connections[0].To = "add0.y" }, "not an input"},
		{"malformed", func(d *Datapath) { d.Connections[0].From = "bare" }, "malformed endpoint"},
		{"double drive", func(d *Datapath) {
			d.Connections = append(d.Connections, Connection{From: "c10.y", To: "add0.a"})
		}, "already driven"},
		{"control no targets", func(d *Datapath) { d.Controls[0].Targets = nil }, "no targets"},
		{"status not output", func(d *Datapath) { d.Statuses[0].From = "lt0.a" }, "not an output"},
		{"missing id", func(d *Datapath) { d.Operators[0].ID = "" }, "has no id"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dp := smallDatapath()
			c.mutate(dp)
			err := ValidateDatapath(dp, reg)
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), c.expect) {
				t.Fatalf("error %q does not mention %q", err, c.expect)
			}
		})
	}
}

func TestValidateFSMAcceptsGood(t *testing.T) {
	if err := ValidateFSM(smallFSM()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateFSMProblems(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*FSM)
		expect string
	}{
		{"no initial", func(f *FSM) { f.States[0].Initial = false }, "exactly one initial"},
		{"two initials", func(f *FSM) { f.States[1].Initial = true }, "exactly one initial"},
		{"no final", func(f *FSM) { f.States[1].Final = false; f.States[1].Transitions = []Transition{{Next: "S0"}} }, "at least one final"},
		{"dup state", func(f *FSM) { f.States[1].Name = "S0" }, "duplicate state"},
		{"bad next", func(f *FSM) { f.States[0].Transitions[1].Next = "missing" }, "unknown state"},
		{"bad assign", func(f *FSM) { f.States[0].Assigns[0].Signal = "ghost" }, "undeclared output"},
		{"dup input", func(f *FSM) { f.Inputs = append(f.Inputs, FSMSignal{Name: "i_lt_10"}) }, "duplicate input"},
		{"dup output", func(f *FSM) { f.Outputs = append(f.Outputs, FSMSignal{Name: "en_i"}) }, "duplicate output"},
		{"dead state", func(f *FSM) {
			f.States = append(f.States, State{Name: "ORPHAN"})
		}, "no transitions"},
		{"early default", func(f *FSM) {
			f.States[0].Transitions = []Transition{{Next: "END"}, {Cond: "i_lt_10", Next: "S0"}}
		}, "not last"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := smallFSM()
			c.mutate(f)
			err := ValidateFSM(f)
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), c.expect) {
				t.Fatalf("error %q does not mention %q", err, c.expect)
			}
		})
	}
}

func TestValidateRTGProblems(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*RTG)
		expect string
	}{
		{"bad start", func(r *RTG) { r.Start = "zzz" }, "not defined"},
		{"dup cfg", func(r *RTG) {
			r.Configurations = append(r.Configurations, Configuration{ID: "cfg0", Datapath: "x", FSM: "y"})
		}, "duplicate configuration"},
		{"empty", func(r *RTG) { r.Configurations = nil }, "no configurations"},
		{"bad transition", func(r *RTG) {
			r.Transitions = []RTGTransition{{From: "cfg0", To: "missing"}}
		}, "unknown configuration"},
		{"bad memory", func(r *RTG) {
			r.Memories = []SharedMemory{{ID: "m", Depth: 0}}
		}, "positive depth"},
		{"dup memory", func(r *RTG) {
			r.Memories = []SharedMemory{{ID: "m", Depth: 4}, {ID: "m", Depth: 4}}
		}, "duplicate memory"},
		{"fanout", func(r *RTG) {
			r.Configurations = append(r.Configurations, Configuration{ID: "c2", Datapath: "x", FSM: "y"})
			r.Transitions = []RTGTransition{{From: "cfg0", To: "c2"}, {From: "cfg0", To: "c2"}}
		}, "more than one outgoing"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := smallRTG()
			c.mutate(r)
			err := ValidateRTG(r)
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), c.expect) {
				t.Fatalf("error %q does not mention %q", err, c.expect)
			}
		})
	}
}

func TestValidateDesignCrossRefs(t *testing.T) {
	reg := operators.DefaultRegistry()
	d := NewDesign(smallRTG())
	d.RTG.Configurations = nil // AddConfiguration re-adds
	d.AddConfiguration("cfg0", smallDatapath(), smallFSM())
	d.RTG.Start = "cfg0"
	if err := ValidateDesign(d, reg); err != nil {
		t.Fatal(err)
	}

	// A ram Ref to an undeclared shared memory must fail.
	dp := d.Datapaths["count"]
	dp.Operators = append(dp.Operators, Operator{ID: "m0", Type: "ram", Depth: 8, Ref: "ghost"})
	err := ValidateDesign(d, reg)
	if err == nil || !strings.Contains(err.Error(), "unknown shared memory") {
		t.Fatalf("err=%v", err)
	}
}

func TestValidateDesignMissingDocs(t *testing.T) {
	reg := operators.DefaultRegistry()
	d := NewDesign(smallRTG())
	err := ValidateDesign(d, reg)
	if err == nil || !strings.Contains(err.Error(), "missing datapath") {
		t.Fatalf("err=%v", err)
	}
}

func TestSaveLoadDesign(t *testing.T) {
	dir := t.TempDir()
	d := NewDesign(&RTG{Name: "count", Start: "cfg0"})
	d.AddConfiguration("cfg0", smallDatapath(), smallFSM())
	files, err := SaveDesign(d, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"rtg", "datapath:count", "fsm:count_ctl"} {
		if files[label] == "" {
			t.Fatalf("missing file for %s: %v", label, files)
		}
	}
	back, err := LoadDesign(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateDesign(back, operators.DefaultRegistry()); err != nil {
		t.Fatal(err)
	}
	if back.Datapaths["count"].OperatorCount() != 5 {
		t.Fatalf("operators=%d", back.Datapaths["count"].OperatorCount())
	}
}

func TestLineCount(t *testing.T) {
	doc := []byte("a\n\n  \nb\nc\n")
	if got := LineCount(doc); got != 3 {
		t.Fatalf("LineCount=%d want 3", got)
	}
	dp, err := Marshal(smallDatapath())
	if err != nil {
		t.Fatal(err)
	}
	if LineCount(dp) < 10 {
		t.Fatalf("marshalled datapath suspiciously short:\n%s", dp)
	}
}

func TestParamsOfDefaults(t *testing.T) {
	op := &Operator{ID: "x", Type: "add"}
	p := ParamsOf(op, 0)
	if p.Width != 32 {
		t.Fatalf("width=%d want 32 default", p.Width)
	}
	p = ParamsOf(op, 16)
	if p.Width != 16 {
		t.Fatalf("width=%d want datapath default 16", p.Width)
	}
	op.Width = 8
	p = ParamsOf(op, 16)
	if p.Width != 8 {
		t.Fatalf("width=%d want explicit 8", p.Width)
	}
}

func TestOperatorCountMatchesTableIColumn(t *testing.T) {
	dp := smallDatapath()
	if dp.OperatorCount() != 5 {
		t.Fatalf("OperatorCount=%d", dp.OperatorCount())
	}
	if _, ok := dp.FindOperator("add0"); !ok {
		t.Fatal("FindOperator failed")
	}
	if _, ok := dp.FindOperator("nope"); ok {
		t.Fatal("FindOperator false positive")
	}
}
