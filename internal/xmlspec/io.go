package xmlspec

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Design bundles an RTG with the datapaths and FSMs its configurations
// reference — the complete compiler output for one source program.
type Design struct {
	RTG       *RTG
	Datapaths map[string]*Datapath
	FSMs      map[string]*FSM
}

// NewDesign returns an empty design with the given RTG.
func NewDesign(rtg *RTG) *Design {
	return &Design{RTG: rtg, Datapaths: map[string]*Datapath{}, FSMs: map[string]*FSM{}}
}

// AddConfiguration registers a datapath/FSM pair under the configuration id.
func (d *Design) AddConfiguration(id string, dp *Datapath, fsm *FSM) {
	d.Datapaths[dp.Name] = dp
	d.FSMs[fsm.Name] = fsm
	d.RTG.Configurations = append(d.RTG.Configurations, Configuration{
		ID: id, Datapath: dp.Name, FSM: fsm.Name,
	})
}

// Marshal renders any of the dialect roots as indented XML with header.
func Marshal(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, fmt.Errorf("xmlspec: marshal: %w", err)
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// LineCount returns the number of non-empty lines in a rendered document —
// the loXML metric of the paper's Table I.
func LineCount(doc []byte) int {
	n := 0
	for _, line := range strings.Split(string(doc), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// ParseDatapath decodes a datapath document.
func ParseDatapath(data []byte) (*Datapath, error) {
	var d Datapath
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("xmlspec: datapath: %w", err)
	}
	return &d, nil
}

// ParseFSM decodes an fsm document.
func ParseFSM(data []byte) (*FSM, error) {
	var f FSM
	if err := xml.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("xmlspec: fsm: %w", err)
	}
	return &f, nil
}

// ParseRTG decodes an rtg document.
func ParseRTG(data []byte) (*RTG, error) {
	var r RTG
	if err := xml.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("xmlspec: rtg: %w", err)
	}
	return &r, nil
}

// SaveDesign writes rtg.xml plus one <name>.dp.xml / <name>.fsm.xml per
// configuration into dir and returns the written file paths keyed by a
// descriptive label.
func SaveDesign(d *Design, dir string) (map[string]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	out := map[string]string{}
	write := func(label, name string, v interface{}) error {
		doc, err := Marshal(v)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, doc, 0o644); err != nil {
			return err
		}
		out[label] = path
		return nil
	}
	if err := write("rtg", "rtg.xml", d.RTG); err != nil {
		return nil, err
	}
	for name, dp := range d.Datapaths {
		if err := write("datapath:"+name, name+".dp.xml", dp); err != nil {
			return nil, err
		}
	}
	for name, f := range d.FSMs {
		if err := write("fsm:"+name, name+".fsm.xml", f); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// LoadDesign reads rtg.xml from dir and resolves every referenced
// datapath and FSM from sibling files written by SaveDesign.
func LoadDesign(dir string) (*Design, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "rtg.xml"))
	if err != nil {
		return nil, err
	}
	rtg, err := ParseRTG(raw)
	if err != nil {
		return nil, err
	}
	d := &Design{RTG: rtg, Datapaths: map[string]*Datapath{}, FSMs: map[string]*FSM{}}
	for _, cfg := range rtg.Configurations {
		if _, ok := d.Datapaths[cfg.Datapath]; !ok {
			raw, err := os.ReadFile(filepath.Join(dir, cfg.Datapath+".dp.xml"))
			if err != nil {
				return nil, err
			}
			dp, err := ParseDatapath(raw)
			if err != nil {
				return nil, err
			}
			d.Datapaths[cfg.Datapath] = dp
		}
		if _, ok := d.FSMs[cfg.FSM]; !ok {
			raw, err := os.ReadFile(filepath.Join(dir, cfg.FSM+".fsm.xml"))
			if err != nil {
				return nil, err
			}
			f, err := ParseFSM(raw)
			if err != nil {
				return nil, err
			}
			d.FSMs[cfg.FSM] = f
		}
	}
	return d, nil
}
