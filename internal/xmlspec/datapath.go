// Package xmlspec defines the three XML dialects the compiler emits and
// the test infrastructure consumes: datapath.xml (structural netlist of
// operators), fsm.xml (behavioural control unit) and rtg.xml
// (Reconfiguration Transition Graph across temporal partitions). The
// dialects carry the same information content as the paper's; element and
// attribute names are ours.
package xmlspec

import "encoding/xml"

// Datapath is the structural description of one configuration's
// datapath: operator instances, point-to-point connections, and the
// control/status interface to the control unit. Clock distribution is
// implicit: elaboration wires every clocked operator to the global clock.
type Datapath struct {
	XMLName     xml.Name     `xml:"datapath"`
	Name        string       `xml:"name,attr"`
	Width       int          `xml:"width,attr,omitempty"` // default word width
	Operators   []Operator   `xml:"operators>operator"`
	Connections []Connection `xml:"connections>connect"`
	Controls    []Control    `xml:"controls>control"`
	Statuses    []Status     `xml:"statuses>status"`
}

// Operator is one functional-unit instance.
type Operator struct {
	ID     string `xml:"id,attr"`
	Type   string `xml:"type,attr"`
	Width  int    `xml:"width,attr,omitempty"`
	Value  int64  `xml:"value,attr,omitempty"`  // const / reg reset value
	Depth  int    `xml:"depth,attr,omitempty"`  // ram/rom depth in words
	Inputs int    `xml:"inputs,attr,omitempty"` // mux fan-in
	Ref    string `xml:"ref,attr,omitempty"`    // RTG shared-memory id
	File   string `xml:"file,attr,omitempty"`   // memory/stimulus contents file
}

// Connection wires a driver endpoint to a sink endpoint; endpoints are
// "instance.port".
type Connection struct {
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
}

// Control is a control line from the FSM into the datapath; one line may
// fan out to several operator ports.
type Control struct {
	Name    string      `xml:"name,attr"`
	Width   int         `xml:"width,attr,omitempty"` // default 1
	Targets []ControlTo `xml:"to"`
}

// ControlTo is one fan-out target of a control line.
type ControlTo struct {
	Port string `xml:"port,attr"` // "instance.port"
}

// Status is a status line from the datapath into the FSM.
type Status struct {
	Name  string `xml:"name,attr"`
	Width int    `xml:"width,attr,omitempty"` // default 1
	From  string `xml:"from,attr"`            // "instance.port"
}

// OperatorCount returns the number of functional units, the "operators"
// column of the paper's Table I.
func (d *Datapath) OperatorCount() int { return len(d.Operators) }

// FindOperator returns the operator with the given id, if present.
func (d *Datapath) FindOperator(id string) (*Operator, bool) {
	for i := range d.Operators {
		if d.Operators[i].ID == id {
			return &d.Operators[i], true
		}
	}
	return nil, false
}

// ControlWidth returns the declared width of a control line (default 1).
func (c *Control) ControlWidth() int {
	if c.Width <= 0 {
		return 1
	}
	return c.Width
}

// StatusWidth returns the declared width of a status line (default 1).
func (s *Status) StatusWidth() int {
	if s.Width <= 0 {
		return 1
	}
	return s.Width
}
