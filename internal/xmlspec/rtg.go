package xmlspec

import "encoding/xml"

// RTG is the Reconfiguration Transition Graph: the flow of configurations
// (temporal partitions) a multi-configuration implementation executes, and
// the memories shared between them. Designs with a single configuration
// use an RTG with one node.
type RTG struct {
	XMLName        xml.Name        `xml:"rtg"`
	Name           string          `xml:"name,attr"`
	Start          string          `xml:"start,attr"`
	Memories       []SharedMemory  `xml:"memories>memory"`
	Configurations []Configuration `xml:"configurations>configuration"`
	Transitions    []RTGTransition `xml:"transitions>transition"`
}

// SharedMemory is a memory that outlives reconfigurations; datapath
// operators of type "ram" bind to it via their Ref attribute. File names
// the initial/expected contents file of the verification flow.
type SharedMemory struct {
	ID    string `xml:"id,attr"`
	Width int    `xml:"width,attr,omitempty"` // default 32
	Depth int    `xml:"depth,attr"`
	File  string `xml:"file,attr,omitempty"`
}

// MemWidth returns the declared width (default 32).
func (m *SharedMemory) MemWidth() int {
	if m.Width <= 0 {
		return 32
	}
	return m.Width
}

// Configuration is one temporal partition: a datapath plus its control
// unit, referenced by name (resolved against the design bundle or against
// sibling files ending in .xml).
type Configuration struct {
	ID       string `xml:"id,attr"`
	Datapath string `xml:"datapath,attr"`
	FSM      string `xml:"fsm,attr"`
}

// RTGTransition sequences configurations; On names the triggering event
// ("done" — the source configuration's FSM reached a final state).
type RTGTransition struct {
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
	On   string `xml:"on,attr,omitempty"`
}

// FindConfiguration returns the configuration with the given id.
func (r *RTG) FindConfiguration(id string) (*Configuration, bool) {
	for i := range r.Configurations {
		if r.Configurations[i].ID == id {
			return &r.Configurations[i], true
		}
	}
	return nil, false
}

// Successor returns the configuration following `from` (empty string when
// the RTG terminates there).
func (r *RTG) Successor(from string) string {
	for _, t := range r.Transitions {
		if t.From == from {
			return t.To
		}
	}
	return ""
}

// FindMemory returns the shared memory with the given id.
func (r *RTG) FindMemory(id string) (*SharedMemory, bool) {
	for i := range r.Memories {
		if r.Memories[i].ID == id {
			return &r.Memories[i], true
		}
	}
	return nil, false
}
