package xmlspec

import "encoding/xml"

// FSM is the behavioural description of a configuration's control unit:
// a Moore machine whose state assigns values to control lines and whose
// transitions are guarded by boolean expressions over status lines.
type FSM struct {
	XMLName xml.Name    `xml:"fsm"`
	Name    string      `xml:"name,attr"`
	Inputs  []FSMSignal `xml:"inputs>signal"`
	Outputs []FSMSignal `xml:"outputs>signal"`
	States  []State     `xml:"states>state"`
}

// FSMSignal declares one status input or control output of the FSM.
type FSMSignal struct {
	Name  string `xml:"name,attr"`
	Width int    `xml:"width,attr,omitempty"` // default 1
}

// SignalWidth returns the declared width (default 1).
func (s *FSMSignal) SignalWidth() int {
	if s.Width <= 0 {
		return 1
	}
	return s.Width
}

// State is one FSM state. Unassigned outputs default to 0 in every state,
// so the XML lists only the active control values (Moore outputs).
type State struct {
	Name        string       `xml:"name,attr"`
	Initial     bool         `xml:"initial,attr,omitempty"`
	Final       bool         `xml:"final,attr,omitempty"`
	Assigns     []Assign     `xml:"assign"`
	Transitions []Transition `xml:"transition"`
}

// Assign sets a control output to a constant value while in the state.
type Assign struct {
	Signal string `xml:"signal,attr"`
	Value  int64  `xml:"value,attr"`
}

// Transition is a guarded next-state edge. An empty Cond is the default
// (always-taken) edge; guards are boolean expressions over status inputs
// using !, &, |, parentheses and the literals 0/1.
type Transition struct {
	Cond string `xml:"cond,attr,omitempty"`
	Next string `xml:"next,attr"`
}

// InitialState returns the state marked initial (validation guarantees
// exactly one).
func (f *FSM) InitialState() (*State, bool) {
	for i := range f.States {
		if f.States[i].Initial {
			return &f.States[i], true
		}
	}
	return nil, false
}

// FindState returns the named state, if present.
func (f *FSM) FindState(name string) (*State, bool) {
	for i := range f.States {
		if f.States[i].Name == name {
			return &f.States[i], true
		}
	}
	return nil, false
}

// StateCount returns the number of states.
func (f *FSM) StateCount() int { return len(f.States) }
