package compiler

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/operators"
	"repro/internal/xmlspec"
)

// builder compiles one temporal partition (a statement list) into a
// datapath and its FSM. The mapping is spatial, as Nenya's operator
// counts indicate: every source-level operation instantiates its own
// functional unit; registers hold scalars; multi-writer registers and
// RAM ports get multiplexers; each statement takes one control step and
// each array read an additional load step.
type builder struct {
	name  string
	width int

	ops   []xmlspec.Operator
	conns []xmlspec.Connection

	opCount  map[string]int
	constIDs map[int64]string

	scalarArgs map[string]int64
	arraySizes map[string]int

	regs     map[string]string   // variable -> reg id
	regSites map[string][]string // reg id -> expr root ports (writer sites)

	ramOf    map[string]string   // array -> ram id
	ramAddrs map[string][]string // ram id -> addr ports (read+write sites)
	ramDins  map[string][]string // ram id -> din ports (write sites)

	loadRegs []string // load register ids (en controls)

	statuses []xmlspec.Status

	states []*xmlspec.State
}

type dangle struct{ si, ti int }

// chain tracks the control-flow frontier during statement compilation.
type chain struct {
	entry int
	outs  []dangle
}

func newChain() *chain { return &chain{entry: -1} }

func newBuilder(name string, width int, scalarArgs map[string]int64, arraySizes map[string]int) *builder {
	return &builder{
		name:       name,
		width:      width,
		opCount:    map[string]int{},
		constIDs:   map[int64]string{},
		scalarArgs: scalarArgs,
		arraySizes: arraySizes,
		regs:       map[string]string{},
		regSites:   map[string][]string{},
		ramOf:      map[string]string{},
		ramAddrs:   map[string][]string{},
		ramDins:    map[string][]string{},
	}
}

// newOp appends an operator instance and returns its id.
func (b *builder) newOp(typ string, mutate func(*xmlspec.Operator)) string {
	id := fmt.Sprintf("%s%d", typ, b.opCount[typ])
	b.opCount[typ]++
	op := xmlspec.Operator{ID: id, Type: typ}
	if mutate != nil {
		mutate(&op)
	}
	b.ops = append(b.ops, op)
	return id
}

func (b *builder) connect(from, to string) {
	b.conns = append(b.conns, xmlspec.Connection{From: from, To: to})
}

// constOf returns the (deduplicated) constant operator driving val.
func (b *builder) constOf(val int64) string {
	if id, ok := b.constIDs[val]; ok {
		return id
	}
	id := b.newOp("const", func(op *xmlspec.Operator) { op.Value = val })
	b.constIDs[val] = id
	return id
}

// regOf returns the register holding a scalar variable, creating it on
// first use (power-on value 0, or the argument value for scalar params).
func (b *builder) regOf(name string) string {
	if id, ok := b.regs[name]; ok {
		return id
	}
	id := "r_" + name
	init := int64(0)
	if v, ok := b.scalarArgs[name]; ok {
		init = v
	}
	b.ops = append(b.ops, xmlspec.Operator{ID: id, Type: "reg", Value: init})
	b.regs[name] = id
	return id
}

// ramOfArray returns the RAM bound to an array parameter, creating it on
// first use; it references the RTG shared memory of the same name.
func (b *builder) ramOfArray(name string) string {
	if id, ok := b.ramOf[name]; ok {
		return id
	}
	id := "m_" + name
	depth := b.arraySizes[name]
	b.ops = append(b.ops, xmlspec.Operator{ID: id, Type: "ram", Depth: depth, Ref: name})
	b.ramOf[name] = id
	return id
}

// States and control flow ---------------------------------------------

func (b *builder) newState() int {
	idx := len(b.states)
	b.states = append(b.states, &xmlspec.State{Name: fmt.Sprintf("S%d", idx)})
	return idx
}

func (b *builder) patch(d dangle, target int) {
	b.states[d.si].Transitions[d.ti].Next = b.states[target].Name
}

func (b *builder) patchAll(ds []dangle, target int) {
	for _, d := range ds {
		b.patch(d, target)
	}
}

// join makes target the successor of the chain frontier.
func (b *builder) join(c *chain, target int) {
	if c.entry == -1 {
		c.entry = target
	}
	b.patchAll(c.outs, target)
	c.outs = nil
}

// addSeqState appends a sequential state (single fall-through edge).
func (b *builder) addSeqState(c *chain) int {
	si := b.newState()
	b.join(c, si)
	st := b.states[si]
	st.Transitions = append(st.Transitions, xmlspec.Transition{})
	c.outs = []dangle{{si, len(st.Transitions) - 1}}
	return si
}

func (b *builder) assign(si int, signal string, val int64) {
	st := b.states[si]
	st.Assigns = append(st.Assigns, xmlspec.Assign{Signal: signal, Value: val})
}

// Expressions -----------------------------------------------------------

// binOpType maps MiniJ binary operators to operator-library types.
var binOpType = map[lang.BinOp]string{
	lang.OpAdd: "add", lang.OpSub: "sub", lang.OpMul: "mul",
	lang.OpDiv: "div", lang.OpMod: "mod",
	lang.OpShl: "shl", lang.OpShr: "sra", lang.OpUshr: "shr",
	lang.OpAnd: "and", lang.OpOr: "or", lang.OpXor: "xor",
}

// cmpOpType maps comparison operators (1-bit results).
var cmpOpType = map[lang.BinOp]string{
	lang.OpEq: "eq", lang.OpNe: "ne", lang.OpLt: "lt",
	lang.OpLe: "le", lang.OpGt: "gt", lang.OpGe: "ge",
}

func isBitExpr(e lang.Expr) bool {
	switch ex := e.(type) {
	case *lang.BinaryExpr:
		if _, ok := cmpOpType[ex.Op]; ok {
			return true
		}
		return ex.Op == lang.OpLAnd || ex.Op == lang.OpLOr
	case *lang.UnaryExpr:
		return ex.Op == lang.OpLNot
	}
	return false
}

// compileExpr emits the operator tree for e in value (word) context and
// returns the driving endpoint. Array reads append load states to c.
func (b *builder) compileExpr(e lang.Expr, c *chain) (string, error) {
	if isBitExpr(e) {
		bit, err := b.compileCond(e, c)
		if err != nil {
			return "", err
		}
		id := b.newOp("b2i", nil)
		b.connect(bit, id+".a")
		return id + ".y", nil
	}
	switch ex := e.(type) {
	case *lang.IntLit:
		return b.constOf(ex.Val) + ".y", nil
	case *lang.VarRef:
		if _, isArg := b.scalarArgs[ex.Name]; isArg {
			if _, isVar := b.regs[ex.Name]; !isVar {
				// Scalar parameter: a design constant.
				return b.constOf(b.scalarArgs[ex.Name]) + ".y", nil
			}
		}
		return b.regOf(ex.Name) + ".q", nil
	case *lang.IndexExpr:
		return b.compileLoad(ex, c)
	case *lang.UnaryExpr:
		var typ string
		switch ex.Op {
		case lang.OpNeg:
			typ = "neg"
		case lang.OpBNot:
			typ = "not"
		default:
			return "", fmt.Errorf("compiler: unhandled unary %q", ex.Op)
		}
		x, err := b.compileExpr(ex.X, c)
		if err != nil {
			return "", err
		}
		id := b.newOp(typ, nil)
		b.connect(x, id+".a")
		return id + ".y", nil
	case *lang.BinaryExpr:
		typ, ok := binOpType[ex.Op]
		if !ok {
			return "", fmt.Errorf("compiler: unhandled binary %q", ex.Op)
		}
		l, err := b.compileExpr(ex.L, c)
		if err != nil {
			return "", err
		}
		r, err := b.compileExpr(ex.R, c)
		if err != nil {
			return "", err
		}
		id := b.newOp(typ, nil)
		b.connect(l, id+".a")
		b.connect(r, id+".b")
		return id + ".y", nil
	default:
		return "", fmt.Errorf("compiler: unknown expression %T", e)
	}
}

// compileCond emits e in 1-bit (guard) context.
func (b *builder) compileCond(e lang.Expr, c *chain) (string, error) {
	switch ex := e.(type) {
	case *lang.BinaryExpr:
		if typ, ok := cmpOpType[ex.Op]; ok {
			l, err := b.compileExpr(ex.L, c)
			if err != nil {
				return "", err
			}
			r, err := b.compileExpr(ex.R, c)
			if err != nil {
				return "", err
			}
			id := b.newOp(typ, nil)
			b.connect(l, id+".a")
			b.connect(r, id+".b")
			return id + ".y", nil
		}
		if ex.Op == lang.OpLAnd || ex.Op == lang.OpLOr {
			typ := "and"
			if ex.Op == lang.OpLOr {
				typ = "or"
			}
			l, err := b.compileCond(ex.L, c)
			if err != nil {
				return "", err
			}
			r, err := b.compileCond(ex.R, c)
			if err != nil {
				return "", err
			}
			id := b.newOp(typ, func(op *xmlspec.Operator) { op.Width = 1 })
			b.connect(l, id+".a")
			b.connect(r, id+".b")
			return id + ".y", nil
		}
	case *lang.UnaryExpr:
		if ex.Op == lang.OpLNot {
			x, err := b.compileExpr(ex.X, c)
			if err != nil {
				return "", err
			}
			id := b.newOp("lnot", nil)
			b.connect(x, id+".a")
			return id + ".y", nil
		}
	}
	// General integer condition: non-zero test.
	x, err := b.compileExpr(e, c)
	if err != nil {
		return "", err
	}
	id := b.newOp("ne", nil)
	b.connect(x, id+".a")
	b.connect(b.constOf(0)+".y", id+".b")
	return id + ".y", nil
}

// compileLoad emits one array read: an address site on the RAM, a
// dedicated load register, and one control step that selects the address
// and captures dout.
func (b *builder) compileLoad(ex *lang.IndexExpr, c *chain) (string, error) {
	addrPort, err := b.compileExpr(ex.Index, c)
	if err != nil {
		return "", err
	}
	ram := b.ramOfArray(ex.Array)
	site := len(b.ramAddrs[ram])
	b.ramAddrs[ram] = append(b.ramAddrs[ram], addrPort)

	ld := fmt.Sprintf("ld%d", len(b.loadRegs))
	b.loadRegs = append(b.loadRegs, ld)
	b.ops = append(b.ops, xmlspec.Operator{ID: ld, Type: "reg"})
	b.connect(ram+".dout", ld+".d")

	si := b.addSeqState(c)
	b.assign(si, "asel_"+ram, int64(site))
	b.assign(si, "en_"+ld, 1)
	return ld + ".q", nil
}

// addStatus registers a 1-bit net as an FSM status input.
func (b *builder) addStatus(port string) string {
	name := fmt.Sprintf("s%d", len(b.statuses))
	b.statuses = append(b.statuses, xmlspec.Status{Name: name, From: port})
	return name
}

// Statements ------------------------------------------------------------

func (b *builder) compileStmts(stmts []lang.Stmt, c *chain) error {
	for _, s := range stmts {
		if err := b.compileStmt(s, c); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) compileStmt(s lang.Stmt, c *chain) error {
	switch st := s.(type) {
	case *lang.PartitionStmt:
		return fmt.Errorf("compiler: partition marker inside a partition (sema should have caught this)")
	case *lang.DeclStmt:
		var init lang.Expr = &lang.IntLit{Val: 0}
		if st.Init != nil {
			init = st.Init
		}
		return b.compileRegWrite(st.Name, init, c)
	case *lang.AssignStmt:
		return b.compileRegWrite(st.Name, st.Expr, c)
	case *lang.StoreStmt:
		addrPort, err := b.compileExpr(st.Index, c)
		if err != nil {
			return err
		}
		dataPort, err := b.compileExpr(st.Expr, c)
		if err != nil {
			return err
		}
		ram := b.ramOfArray(st.Array)
		asite := len(b.ramAddrs[ram])
		b.ramAddrs[ram] = append(b.ramAddrs[ram], addrPort)
		dsite := len(b.ramDins[ram])
		b.ramDins[ram] = append(b.ramDins[ram], dataPort)
		si := b.addSeqState(c)
		b.assign(si, "asel_"+ram, int64(asite))
		b.assign(si, "dsel_"+ram, int64(dsite))
		b.assign(si, "we_"+ram, 1)
		return nil
	case *lang.IfStmt:
		bit, err := b.compileCond(st.Cond, c)
		if err != nil {
			return err
		}
		status := b.addStatus(bit)
		check := b.newState()
		b.join(c, check)
		b.states[check].Transitions = []xmlspec.Transition{
			{Cond: status},
			{},
		}
		thenD := dangle{check, 0}
		elseD := dangle{check, 1}
		var outs []dangle

		tc := newChain()
		if err := b.compileStmts(st.Then, tc); err != nil {
			return err
		}
		if tc.entry == -1 {
			outs = append(outs, thenD)
		} else {
			b.patch(thenD, tc.entry)
			outs = append(outs, tc.outs...)
		}

		ec := newChain()
		if err := b.compileStmts(st.Else, ec); err != nil {
			return err
		}
		if ec.entry == -1 {
			outs = append(outs, elseD)
		} else {
			b.patch(elseD, ec.entry)
			outs = append(outs, ec.outs...)
		}
		c.outs = outs
		return nil
	case *lang.WhileStmt:
		return b.compileLoop(nil, st.Cond, nil, st.Body, c)
	case *lang.ForStmt:
		return b.compileLoop(st.Init, st.Cond, st.Post, st.Body, c)
	default:
		return fmt.Errorf("compiler: unknown statement %T", s)
	}
}

// compileRegWrite emits expr evaluation plus one control step writing the
// register through its (future) input multiplexer site.
func (b *builder) compileRegWrite(name string, expr lang.Expr, c *chain) error {
	port, err := b.compileExpr(expr, c)
	if err != nil {
		return err
	}
	reg := b.regOf(name)
	site := len(b.regSites[reg])
	b.regSites[reg] = append(b.regSites[reg], port)
	si := b.addSeqState(c)
	b.assign(si, "sel_"+reg, int64(site))
	b.assign(si, "en_"+reg, 1)
	return nil
}

// compileLoop handles while (init/post nil) and for loops. The guard is
// re-evaluated each iteration: its load states are part of the loop.
func (b *builder) compileLoop(init lang.Stmt, cond lang.Expr, post lang.Stmt, body []lang.Stmt, c *chain) error {
	if init != nil {
		if err := b.compileStmt(init, c); err != nil {
			return err
		}
	}
	if cond == nil {
		// for(;;): body cycles forever; nothing after is reachable.
		bc := newChain()
		if err := b.compileStmts(body, bc); err != nil {
			return err
		}
		if post != nil {
			if err := b.compileStmt(post, bc); err != nil {
				return err
			}
		}
		if bc.entry == -1 {
			// Empty infinite loop: a state that spins on itself.
			si := b.newState()
			b.join(c, si)
			b.states[si].Transitions = []xmlspec.Transition{{Next: b.states[si].Name}}
			c.outs = nil
			return nil
		}
		b.join(c, bc.entry)
		b.patchAll(bc.outs, bc.entry)
		c.outs = nil
		return nil
	}

	sub := newChain()
	bit, err := b.compileCond(cond, sub)
	if err != nil {
		return err
	}
	status := b.addStatus(bit)
	check := b.newState()
	b.join(sub, check)
	b.states[check].Transitions = []xmlspec.Transition{
		{Cond: status},
		{},
	}
	bodyD := dangle{check, 0}
	exitD := dangle{check, 1}

	bc := newChain()
	if err := b.compileStmts(body, bc); err != nil {
		return err
	}
	if post != nil {
		if err := b.compileStmt(post, bc); err != nil {
			return err
		}
	}
	if bc.entry == -1 {
		b.patch(bodyD, sub.entry)
	} else {
		b.patch(bodyD, bc.entry)
		b.patchAll(bc.outs, sub.entry)
	}

	b.join(c, sub.entry)
	c.outs = []dangle{exitD}
	return nil
}

// Finalisation ----------------------------------------------------------

// finalize materialises multiplexers, control and status declarations,
// filters single-site select assigns, and assembles the datapath and FSM
// documents.
func (b *builder) finalize(body []lang.Stmt) (*xmlspec.Datapath, *xmlspec.FSM, error) {
	c := newChain()
	if err := b.compileStmts(body, c); err != nil {
		return nil, nil, err
	}
	end := b.newState()
	b.states[end].Name = "END" // must precede join: patches record names
	b.join(c, end)
	b.states[end].Final = true
	b.states[end].Assigns = append(b.states[end].Assigns, xmlspec.Assign{Signal: "done", Value: 1})
	b.states[c.entryOr(end)].Initial = true

	var controls []xmlspec.Control
	addCtl := func(name string, width int, targets ...string) {
		ctl := xmlspec.Control{Name: name, Width: width}
		for _, t := range targets {
			ctl.Targets = append(ctl.Targets, xmlspec.ControlTo{Port: t})
		}
		controls = append(controls, ctl)
	}

	// Register input muxes.
	for _, varName := range sortedKeys(b.regs) {
		reg := b.regs[varName]
		sites := b.regSites[reg]
		if len(sites) == 0 {
			// Read-only register (scalar parameter promoted to reg is
			// impossible; sema guarantees decl-before-use, so this is a
			// never-written variable, legal only if never read either).
			continue
		}
		addCtl("en_"+reg, 1, reg+".en")
		if len(sites) == 1 {
			b.connect(sites[0], reg+".d")
			continue
		}
		mux := b.newOp("mux", func(op *xmlspec.Operator) { op.Inputs = len(sites) })
		for i, p := range sites {
			b.connect(p, fmt.Sprintf("%s.in%d", mux, i))
		}
		b.connect(mux+".y", reg+".d")
		addCtl("sel_"+reg, operators.AddrWidth(len(sites)), mux+".sel")
	}

	// RAM address and data muxes.
	for _, arr := range sortedKeys(b.ramOf) {
		ram := b.ramOf[arr]
		addrs := b.ramAddrs[ram]
		dins := b.ramDins[ram]
		switch len(addrs) {
		case 0:
			// RAM instantiated but never accessed; leave addr untied?
			// The ram spec requires addr; tie to constant 0.
			b.connect(b.constOf(0)+".y", ram+".addr")
		case 1:
			b.connect(addrs[0], ram+".addr")
		default:
			mux := b.newOp("mux", func(op *xmlspec.Operator) { op.Inputs = len(addrs) })
			for i, p := range addrs {
				b.connect(p, fmt.Sprintf("%s.in%d", mux, i))
			}
			b.connect(mux+".y", ram+".addr")
			addCtl("asel_"+ram, operators.AddrWidth(len(addrs)), mux+".sel")
		}
		switch len(dins) {
		case 0: // read-only: netlist ties din/we
		case 1:
			b.connect(dins[0], ram+".din")
			addCtl("we_"+ram, 1, ram+".we")
		default:
			mux := b.newOp("mux", func(op *xmlspec.Operator) { op.Inputs = len(dins) })
			for i, p := range dins {
				b.connect(p, fmt.Sprintf("%s.in%d", mux, i))
			}
			b.connect(mux+".y", ram+".din")
			addCtl("dsel_"+ram, operators.AddrWidth(len(dins)), mux+".sel")
			addCtl("we_"+ram, 1, ram+".we")
		}
	}

	// Load register enables.
	for _, ld := range b.loadRegs {
		addCtl("en_"+ld, 1, ld+".en")
	}

	// Valid control set: used to drop select assigns that lost their mux.
	valid := map[string]bool{"done": true}
	for _, ctl := range controls {
		valid[ctl.Name] = true
	}
	states := make([]xmlspec.State, 0, len(b.states))
	for _, st := range b.states {
		kept := st.Assigns[:0]
		for _, a := range st.Assigns {
			if valid[a.Signal] {
				kept = append(kept, a)
			}
		}
		st.Assigns = kept
		states = append(states, *st)
	}

	dp := &xmlspec.Datapath{
		Name:        b.name,
		Width:       b.width,
		Operators:   b.ops,
		Connections: b.conns,
		Controls:    controls,
		Statuses:    b.statuses,
	}
	fsm := &xmlspec.FSM{Name: b.name + "_ctl"}
	for _, st := range b.statuses {
		fsm.Inputs = append(fsm.Inputs, xmlspec.FSMSignal{Name: st.Name, Width: 1})
	}
	for _, ctl := range controls {
		fsm.Outputs = append(fsm.Outputs, xmlspec.FSMSignal{Name: ctl.Name, Width: ctl.ControlWidth()})
	}
	fsm.Outputs = append(fsm.Outputs, xmlspec.FSMSignal{Name: "done", Width: 1})
	fsm.States = states
	return dp, fsm, nil
}

func (c *chain) entryOr(fallback int) int {
	if c.entry == -1 {
		return fallback
	}
	return c.entry
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
