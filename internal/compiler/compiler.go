// Package compiler translates MiniJ functions into the XML dialects the
// test infrastructure consumes — the role of the Galadriel & Nenya
// compiler in the paper. The output of Compile is a complete design:
// an RTG over one or more temporal partitions, each with a spatially
// mapped datapath and a Moore FSM control unit.
package compiler

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/operators"
	"repro/internal/xmlspec"
)

// Config parameterises compilation. Array sizes and scalar argument
// values are design-time constants (the harness derives them from the
// memory/stimulus files, as the paper's flow does).
type Config struct {
	Width          int // word width; default 32
	ArraySizes     map[string]int
	ScalarArgs     map[string]int64
	AutoPartitions int // >1: split a marker-free body into N partitions
}

// PartitionMeta reports one configuration's size for the Table I columns.
type PartitionMeta struct {
	ID        string
	Datapath  string
	FSM       string
	Operators int // functional units (operators column)
	States    int // FSM states
}

// Result is a compiled design plus its metadata.
type Result struct {
	Design *xmlspec.Design
	Meta   []PartitionMeta
	Func   *lang.Func
}

// Compile builds the design for one function of the program.
func Compile(prog *lang.Program, funcName string, cfg Config) (*Result, error) {
	if _, err := lang.Analyze(prog); err != nil {
		return nil, err
	}
	f, ok := prog.FindFunc(funcName)
	if !ok {
		return nil, fmt.Errorf("compiler: no function %q", funcName)
	}
	width := cfg.Width
	if width <= 0 {
		width = 32
	}
	scalarArgs := map[string]int64{}
	var arrays []*lang.Param
	for _, p := range f.Params {
		if p.IsArray {
			if cfg.ArraySizes[p.Name] <= 0 {
				return nil, fmt.Errorf("compiler: array %q needs a positive size", p.Name)
			}
			arrays = append(arrays, p)
			continue
		}
		v, ok := cfg.ScalarArgs[p.Name]
		if !ok {
			return nil, fmt.Errorf("compiler: scalar parameter %q needs a value", p.Name)
		}
		scalarArgs[p.Name] = v
	}

	parts := splitPartitions(f.Body)
	if len(parts) == 1 && cfg.AutoPartitions > 1 {
		parts = autoSplit(f.Body, cfg.AutoPartitions)
	}

	rtg := &xmlspec.RTG{Name: funcName, Start: "cfg1"}
	for _, p := range arrays {
		rtg.Memories = append(rtg.Memories, xmlspec.SharedMemory{
			ID: p.Name, Width: width, Depth: cfg.ArraySizes[p.Name],
			File: p.Name + ".mem",
		})
	}
	design := xmlspec.NewDesign(rtg)
	res := &Result{Design: design, Func: f}

	for i, body := range parts {
		cfgID := fmt.Sprintf("cfg%d", i+1)
		b := newBuilder(fmt.Sprintf("%s_p%d", funcName, i+1), width, scalarArgs, cfg.ArraySizes)
		dp, fsm, err := b.finalize(body)
		if err != nil {
			return nil, err
		}
		design.AddConfiguration(cfgID, dp, fsm)
		res.Meta = append(res.Meta, PartitionMeta{
			ID: cfgID, Datapath: dp.Name, FSM: fsm.Name,
			Operators: dp.OperatorCount(), States: fsm.StateCount(),
		})
		if i > 0 {
			rtg.Transitions = append(rtg.Transitions, xmlspec.RTGTransition{
				From: fmt.Sprintf("cfg%d", i), To: cfgID, On: "done",
			})
		}
	}
	if err := xmlspec.ValidateDesign(design, operators.DefaultRegistry()); err != nil {
		return nil, fmt.Errorf("compiler: generated design invalid: %w", err)
	}
	return res, nil
}

// splitPartitions cuts the body at top-level partition markers.
func splitPartitions(body []lang.Stmt) [][]lang.Stmt {
	var parts [][]lang.Stmt
	cur := []lang.Stmt{}
	for _, s := range body {
		if _, ok := s.(*lang.PartitionStmt); ok {
			parts = append(parts, cur)
			cur = []lang.Stmt{}
			continue
		}
		cur = append(cur, s)
	}
	parts = append(parts, cur)
	return parts
}

// EstimateWeight counts operation nodes in a statement — the greedy
// metric the automatic temporal partitioner balances.
func EstimateWeight(s lang.Stmt) int {
	switch st := s.(type) {
	case *lang.DeclStmt:
		return 1 + exprWeight(st.Init)
	case *lang.AssignStmt:
		return 1 + exprWeight(st.Expr)
	case *lang.StoreStmt:
		return 1 + exprWeight(st.Index) + exprWeight(st.Expr)
	case *lang.IfStmt:
		w := 1 + exprWeight(st.Cond)
		for _, sub := range st.Then {
			w += EstimateWeight(sub)
		}
		for _, sub := range st.Else {
			w += EstimateWeight(sub)
		}
		return w
	case *lang.WhileStmt:
		w := 1 + exprWeight(st.Cond)
		for _, sub := range st.Body {
			w += EstimateWeight(sub)
		}
		return w
	case *lang.ForStmt:
		w := 1 + exprWeight(st.Cond)
		if st.Init != nil {
			w += EstimateWeight(st.Init)
		}
		if st.Post != nil {
			w += EstimateWeight(st.Post)
		}
		for _, sub := range st.Body {
			w += EstimateWeight(sub)
		}
		return w
	default:
		return 1
	}
}

func exprWeight(e lang.Expr) int {
	switch ex := e.(type) {
	case nil:
		return 0
	case *lang.IntLit:
		return 0
	case *lang.VarRef:
		return 0
	case *lang.IndexExpr:
		return 2 + exprWeight(ex.Index) // load reg + site
	case *lang.UnaryExpr:
		return 1 + exprWeight(ex.X)
	case *lang.BinaryExpr:
		return 1 + exprWeight(ex.L) + exprWeight(ex.R)
	default:
		return 1
	}
}

// autoSplit greedily packs top-level statements into n partitions of
// roughly equal operator weight, preserving order. A split point is only
// legal where no scalar declared before it is referenced after it
// (partitions communicate exclusively through the shared SRAMs). Fewer
// than n partitions result when legal split points are scarce.
func autoSplit(body []lang.Stmt, n int) [][]lang.Stmt {
	if n <= 1 || len(body) <= 1 {
		return [][]lang.Stmt{body}
	}
	allowed := legalSplits(body)
	total := 0
	for _, s := range body {
		total += EstimateWeight(s)
	}
	target := (total + n - 1) / n
	var parts [][]lang.Stmt
	cur := []lang.Stmt{}
	acc := 0
	for i, s := range body {
		w := EstimateWeight(s)
		if len(cur) > 0 && acc+w > target && n-len(parts) > 1 && allowed[i] {
			parts = append(parts, cur)
			cur, acc = []lang.Stmt{}, 0
		}
		cur = append(cur, s)
		acc += w
	}
	parts = append(parts, cur)
	return parts
}

// legalSplits reports, for each index i, whether the body may be cut
// before statement i: the scalars declared by top-level declarations in
// body[:i] must not occur free in body[i:].
func legalSplits(body []lang.Stmt) []bool {
	allowed := make([]bool, len(body))
	declared := map[string]bool{}
	// freeAfter[i] = free scalar names of body[i:].
	freeAfter := make([]map[string]bool, len(body)+1)
	freeAfter[len(body)] = map[string]bool{}
	for i := len(body) - 1; i >= 0; i-- {
		m := map[string]bool{}
		for k := range freeAfter[i+1] {
			m[k] = true
		}
		for k := range freeScalars(body[i]) {
			m[k] = true
		}
		// A top-level declaration bounds its own name for earlier suffixes.
		if d, ok := body[i].(*lang.DeclStmt); ok {
			delete(m, d.Name)
		}
		freeAfter[i] = m
	}
	for i := range body {
		ok := true
		for name := range freeAfter[i] {
			if declared[name] {
				ok = false
				break
			}
		}
		allowed[i] = ok
		if d, isDecl := body[i].(*lang.DeclStmt); isDecl {
			declared[d.Name] = true
		}
	}
	return allowed
}

// freeScalars returns the scalar names a statement references (reads or
// writes) that it does not itself declare.
func freeScalars(s lang.Stmt) map[string]bool {
	free := map[string]bool{}
	var walkStmt func(s lang.Stmt, local map[string]bool)
	var walkExpr func(e lang.Expr, local map[string]bool)
	walkExpr = func(e lang.Expr, local map[string]bool) {
		switch ex := e.(type) {
		case nil:
		case *lang.IntLit:
		case *lang.VarRef:
			if !local[ex.Name] {
				free[ex.Name] = true
			}
		case *lang.IndexExpr:
			walkExpr(ex.Index, local)
		case *lang.UnaryExpr:
			walkExpr(ex.X, local)
		case *lang.BinaryExpr:
			walkExpr(ex.L, local)
			walkExpr(ex.R, local)
		}
	}
	walkStmt = func(s lang.Stmt, local map[string]bool) {
		switch st := s.(type) {
		case *lang.DeclStmt:
			walkExpr(st.Init, local)
			local[st.Name] = true
		case *lang.AssignStmt:
			if !local[st.Name] {
				free[st.Name] = true
			}
			walkExpr(st.Expr, local)
		case *lang.StoreStmt:
			walkExpr(st.Index, local)
			walkExpr(st.Expr, local)
		case *lang.IfStmt:
			walkExpr(st.Cond, local)
			scope := inherit(local)
			for _, sub := range st.Then {
				walkStmt(sub, scope)
			}
			scope = inherit(local)
			for _, sub := range st.Else {
				walkStmt(sub, scope)
			}
		case *lang.WhileStmt:
			walkExpr(st.Cond, local)
			scope := inherit(local)
			for _, sub := range st.Body {
				walkStmt(sub, scope)
			}
		case *lang.ForStmt:
			header := inherit(local)
			if st.Init != nil {
				walkStmt(st.Init, header)
			}
			walkExpr(st.Cond, header)
			if st.Post != nil {
				walkStmt(st.Post, header)
			}
			inner := inherit(header)
			for _, sub := range st.Body {
				walkStmt(sub, inner)
			}
		}
	}
	walkStmt(s, map[string]bool{})
	return free
}

func inherit(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
