package compiler

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/lang"
)

// Randomized differential testing: generate structured random MiniJ
// programs, run the compiled architecture on the simulator and the
// source on the golden interpreter, and require bit-identical memory
// contents. This is exactly the workflow the infrastructure exists for —
// re-verifying the compiler after every change — turned on itself.

type progGen struct {
	r     *rand.Rand
	decls int
}

func (g *progGen) expr(depth int, scalars []string) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(5) {
		case 0:
			return "a[i]"
		case 1:
			return "b[i]"
		case 2:
			return "i"
		case 3:
			return fmt.Sprint(g.r.Intn(201) - 100)
		default:
			if len(scalars) == 0 {
				return "i"
			}
			return scalars[g.r.Intn(len(scalars))]
		}
	}
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", ">>>",
		"==", "!=", "<", "<=", ">", ">=", "&&", "||"}
	op := ops[g.r.Intn(len(ops))]
	l := g.expr(depth-1, scalars)
	r := g.expr(depth-1, scalars)
	if op == "<<" || op == ">>" || op == ">>>" {
		// Keep shift amounts small and non-negative so the semantics
		// stay in the regime both sides define identically.
		r = fmt.Sprint(g.r.Intn(8))
	}
	if g.r.Intn(4) == 0 {
		return fmt.Sprintf("(-(%s) %s %s)", l, op, r)
	}
	return fmt.Sprintf("(%s %s %s)", l, op, r)
}

func (g *progGen) stmt(depth int, scalars []string) (string, []string) {
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("b[i] = %s;", g.expr(depth, scalars)), scalars
	case 1:
		return fmt.Sprintf("a[i] = %s;", g.expr(depth, scalars)), scalars
	case 2:
		g.decls++
		name := fmt.Sprintf("t%d", g.decls)
		return fmt.Sprintf("int %s = %s;", name, g.expr(depth, scalars)), append(scalars, name)
	case 3:
		if len(scalars) == 0 {
			return fmt.Sprintf("b[i] = %s;", g.expr(depth, scalars)), scalars
		}
		name := scalars[g.r.Intn(len(scalars))]
		return fmt.Sprintf("%s = %s;", name, g.expr(depth, scalars)), scalars
	default:
		thenStmt, sc := g.stmt(depth-1, scalars)
		elseStmt, _ := g.stmt(depth-1, scalars)
		// Branch bodies may not declare (scope would end); retry on decl.
		if strings.HasPrefix(thenStmt, "int ") || strings.HasPrefix(elseStmt, "int ") {
			return fmt.Sprintf("b[i] = %s;", g.expr(depth, scalars)), scalars
		}
		_ = sc
		return fmt.Sprintf("if (%s) { %s } else { %s }",
			g.expr(depth-1, scalars), thenStmt, elseStmt), scalars
	}
}

func (g *progGen) program(stmts int) string {
	var b strings.Builder
	b.WriteString("void f(int[] a, int[] b, int n) {\n")
	b.WriteString("  for (int i = 0; i < n; i = i + 1) {\n")
	scalars := []string{}
	for s := 0; s < stmts; s++ {
		line, sc := g.stmt(2, scalars)
		scalars = sc
		fmt.Fprintf(&b, "    %s\n", line)
	}
	b.WriteString("  }\n}\n")
	return b.String()
}

func TestRandomizedDifferential(t *testing.T) {
	const programs = 30
	const n = 8
	for seed := 0; seed < programs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := &progGen{r: rand.New(rand.NewSource(int64(seed)))}
			src := g.program(3 + g.r.Intn(4))
			ar := rand.New(rand.NewSource(int64(seed) * 7)).Perm(64)
			inA := make([]int64, n)
			for i := range inA {
				inA[i] = int64(ar[i] - 32)
			}
			defer func() {
				if t.Failed() {
					t.Logf("program:\n%s", src)
				}
			}()
			hw, sw := runBoth(t, src, "f",
				map[string]int{"a": n, "b": n},
				map[string]int64{"n": n},
				map[string][]int64{"a": inA})
			assertEqualMems(t, hw, sw)
		})
	}
}

func TestEndToEndDeepNesting(t *testing.T) {
	src := `void f(int[] a, int[] b, int n) {
	  for (int i = 0; i < n; i = i + 1) {
	    int acc = 0;
	    for (int j = 0; j < 3; j = j + 1) {
	      if (j % 2 == 0) {
	        if (a[i] > 0) { acc = acc + a[i] * j; }
	      } else {
	        while (acc > 50) { acc = acc - 7; }
	      }
	    }
	    b[i] = acc;
	  }
	}`
	hw, sw := runBoth(t, src, "f",
		map[string]int{"a": 6, "b": 6},
		map[string]int64{"n": 6},
		map[string][]int64{"a": {30, -5, 60, 12, 0, 99}})
	assertEqualMems(t, hw, sw)
}

func TestEndToEndManyWritersOneRegister(t *testing.T) {
	// One register written from five sites: exercises a >2-bit mux select.
	src := `void f(int[] a, int[] b, int n) {
	  for (int i = 0; i < n; i = i + 1) {
	    int x = 0;
	    if (a[i] < 10) { x = 1; } else { x = 2; }
	    if (a[i] < 20) { x = x + 10; } else { x = x + 20; }
	    b[i] = x;
	  }
	}`
	hw, sw := runBoth(t, src, "f",
		map[string]int{"a": 5, "b": 5},
		map[string]int64{"n": 5},
		map[string][]int64{"a": {5, 15, 25, 10, 19}})
	assertEqualMems(t, hw, sw)
}

func TestEndToEndComputedAddressing(t *testing.T) {
	src := `void f(int[] a, int[] b, int n) {
	  for (int i = 0; i < n; i = i + 1) {
	    b[(i * 3 + 1) % n] = a[(n - 1) - i];
	  }
	}`
	hw, sw := runBoth(t, src, "f",
		map[string]int{"a": 7, "b": 7},
		map[string]int64{"n": 7},
		map[string][]int64{"a": {1, 2, 3, 4, 5, 6, 7}})
	assertEqualMems(t, hw, sw)
}

func TestEndToEndUnsignedShiftChain(t *testing.T) {
	src := `void f(int[] a, int[] b, int n) {
	  for (int i = 0; i < n; i = i + 1) {
	    b[i] = ((a[i] >>> 1) ^ (a[i] << 2)) | ((~a[i]) >> 3);
	  }
	}`
	hw, sw := runBoth(t, src, "f",
		map[string]int{"a": 4, "b": 4},
		map[string]int64{"n": 4},
		map[string][]int64{"a": {-1, 0x7FFFFFFF, -2147483648, 12345}})
	assertEqualMems(t, hw, sw)
}

func TestEndToEndEmptyBranches(t *testing.T) {
	src := `void f(int[] a, int n) {
	  for (int i = 0; i < n; i = i + 1) {
	    if (a[i] < 0) { a[i] = 0; }
	  }
	}`
	hw, sw := runBoth(t, src, "f",
		map[string]int{"a": 6},
		map[string]int64{"n": 6},
		map[string][]int64{"a": {3, -7, 0, -2, 8, -9}})
	assertEqualMems(t, hw, sw)
}

func TestAutoSplitThreeWay(t *testing.T) {
	src := `void f(int[] a, int[] b, int[] c, int[] d, int n) {
	  for (int i = 0; i < n; i = i + 1) { b[i] = a[i] + 1; }
	  for (int j = 0; j < n; j = j + 1) { c[j] = b[j] * 2; }
	  for (int k = 0; k < n; k = k + 1) { d[k] = c[k] - 3; }
	}`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(prog, "f", Config{
		ArraySizes:     map[string]int{"a": 4, "b": 4, "c": 4, "d": 4},
		ScalarArgs:     map[string]int64{"n": 4},
		AutoPartitions: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Meta) != 3 {
		t.Fatalf("partitions=%d want 3", len(res.Meta))
	}
	if len(res.Design.RTG.Transitions) != 2 {
		t.Fatalf("transitions=%d", len(res.Design.RTG.Transitions))
	}
}
