package compiler

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/rtg"
	"repro/internal/xmlspec"
)

// runBoth compiles src, simulates the generated design, interprets the
// source as golden reference, and returns both memory states.
func runBoth(t *testing.T, src, fn string, sizes map[string]int,
	args map[string]int64, inputs map[string][]int64) (hw, sw map[string][]int64) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(prog, fn, Config{ArraySizes: sizes, ScalarArgs: args})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := rtg.NewController(res.Design, rtgTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	sw = map[string][]int64{}
	for name, depth := range sizes {
		words := make([]int64, depth)
		copy(words, inputs[name])
		if err := ctl.LoadMemory(name, words); err != nil {
			t.Fatal(err)
		}
		ref := make([]int64, depth)
		copy(ref, inputs[name])
		sw[name] = ref
	}
	exec, err := ctl.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Completed {
		t.Fatalf("simulation incomplete: %+v", exec)
	}
	hw = map[string][]int64{}
	for name := range sizes {
		words, err := ctl.Memory(name)
		if err != nil {
			t.Fatal(err)
		}
		hw[name] = words
	}
	if _, err := interp.Run(res.Func, sw, args, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	return hw, sw
}

func assertEqualMems(t *testing.T, hw, sw map[string][]int64) {
	t.Helper()
	for name, ref := range sw {
		got := hw[name]
		if len(got) != len(ref) {
			t.Fatalf("%s: len %d vs %d", name, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s[%d]: hw=%d sw=%d (hw=%v sw=%v)", name, i, got[i], ref[i], got, ref)
			}
		}
	}
}

func TestCompileCounterStructure(t *testing.T) {
	src := `void count(int[] out) {
	  int i;
	  for (i = 0; i < 8; i = i + 1) { out[i] = i * 2; }
	}`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(prog, "count", Config{ArraySizes: map[string]int{"out": 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Meta) != 1 {
		t.Fatalf("meta=%v", res.Meta)
	}
	m := res.Meta[0]
	if m.Operators < 6 {
		t.Fatalf("operators=%d suspiciously few", m.Operators)
	}
	if m.States < 4 {
		t.Fatalf("states=%d suspiciously few", m.States)
	}
	if len(res.Design.RTG.Memories) != 1 || res.Design.RTG.Memories[0].ID != "out" {
		t.Fatalf("memories=%v", res.Design.RTG.Memories)
	}
}

func TestEndToEndArithmetic(t *testing.T) {
	src := `void f(int[] r, int a, int b) {
	  r[0] = a + b;
	  r[1] = a - b;
	  r[2] = a * b;
	  r[3] = a / b;
	  r[4] = a % b;
	  r[5] = (a << 2) + (b >> 1);
	  r[6] = (a & b) | (a ^ b);
	  r[7] = -a + ~b;
	}`
	hw, sw := runBoth(t, src, "f", map[string]int{"r": 8},
		map[string]int64{"a": -57, "b": 13}, nil)
	assertEqualMems(t, hw, sw)
}

func TestEndToEndComparisonsAsValues(t *testing.T) {
	src := `void f(int[] r, int a, int b) {
	  r[0] = a < b;
	  r[1] = a >= b;
	  r[2] = (a == b) + 10;
	  r[3] = (a != b) && (a < 100);
	  r[4] = !a;
	  r[5] = (a > b) || 0;
	}`
	hw, sw := runBoth(t, src, "f", map[string]int{"r": 8},
		map[string]int64{"a": 5, "b": 9}, nil)
	assertEqualMems(t, hw, sw)
}

func TestEndToEndLoopOverArray(t *testing.T) {
	src := `void f(int[] a, int[] b, int n) {
	  for (int i = 0; i < n; i = i + 1) {
	    b[i] = a[i] * a[i] + 1;
	  }
	}`
	hw, sw := runBoth(t, src, "f",
		map[string]int{"a": 8, "b": 8},
		map[string]int64{"n": 8},
		map[string][]int64{"a": {3, -1, 4, 1, -5, 9, 2, 6}})
	assertEqualMems(t, hw, sw)
}

func TestEndToEndIfElseInLoop(t *testing.T) {
	src := `void f(int[] a, int[] b, int n) {
	  for (int i = 0; i < n; i = i + 1) {
	    if (a[i] < 0) { b[i] = -a[i]; } else { b[i] = a[i] * 2; }
	  }
	}`
	hw, sw := runBoth(t, src, "f",
		map[string]int{"a": 6, "b": 6},
		map[string]int64{"n": 6},
		map[string][]int64{"a": {3, -7, 0, -2, 8, -9}})
	assertEqualMems(t, hw, sw)
}

func TestEndToEndNestedLoops(t *testing.T) {
	src := `void f(int[] m, int n) {
	  for (int i = 0; i < n; i = i + 1) {
	    for (int j = 0; j < n; j = j + 1) {
	      m[i * n + j] = i * 10 + j;
	    }
	  }
	}`
	hw, sw := runBoth(t, src, "f",
		map[string]int{"m": 16}, map[string]int64{"n": 4}, nil)
	assertEqualMems(t, hw, sw)
}

func TestEndToEndWhileWithAccumulator(t *testing.T) {
	src := `void f(int[] a, int[] s, int n) {
	  int acc = 0;
	  int i = 0;
	  while (i < n) {
	    acc = acc + a[i];
	    i = i + 1;
	  }
	  s[0] = acc;
	}`
	hw, sw := runBoth(t, src, "f",
		map[string]int{"a": 5, "s": 1},
		map[string]int64{"n": 5},
		map[string][]int64{"a": {10, 20, 30, 40, 50}})
	assertEqualMems(t, hw, sw)
}

func TestEndToEndMultipleReadsSameArray(t *testing.T) {
	src := `void f(int[] a, int[] b, int n) {
	  for (int i = 1; i < n; i = i + 1) {
	    b[i] = a[i] - a[i - 1];
	  }
	}`
	hw, sw := runBoth(t, src, "f",
		map[string]int{"a": 6, "b": 6},
		map[string]int64{"n": 6},
		map[string][]int64{"a": {1, 4, 9, 16, 25, 36}})
	assertEqualMems(t, hw, sw)
}

func TestEndToEndIndirectAddressing(t *testing.T) {
	src := `void f(int[] idx, int[] a, int[] b, int n) {
	  for (int i = 0; i < n; i = i + 1) {
	    b[i] = a[idx[i]];
	  }
	}`
	hw, sw := runBoth(t, src, "f",
		map[string]int{"idx": 4, "a": 4, "b": 4},
		map[string]int64{"n": 4},
		map[string][]int64{"idx": {3, 0, 2, 1}, "a": {100, 200, 300, 400}})
	assertEqualMems(t, hw, sw)
}

func TestEndToEndReadModifyWrite(t *testing.T) {
	src := `void f(int[] a, int n) {
	  for (int i = 0; i < n; i = i + 1) {
	    a[i] = a[i] + 100;
	  }
	}`
	hw, sw := runBoth(t, src, "f",
		map[string]int{"a": 4}, map[string]int64{"n": 4},
		map[string][]int64{"a": {1, 2, 3, 4}})
	assertEqualMems(t, hw, sw)
}

func TestEndToEndTwoPartitions(t *testing.T) {
	src := `void f(int[] img, int[] tmp, int[] out, int n) {
	  for (int i = 0; i < n; i = i + 1) {
	    tmp[i] = img[i] * 3 - 1;
	  }
	  partition;
	  for (int j = 0; j < n; j = j + 1) {
	    out[j] = tmp[j] + tmp[j] / 2;
	  }
	}`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(prog, "f", Config{
		ArraySizes: map[string]int{"img": 8, "tmp": 8, "out": 8},
		ScalarArgs: map[string]int64{"n": 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Meta) != 2 {
		t.Fatalf("want 2 partitions, got %d", len(res.Meta))
	}
	if len(res.Design.RTG.Transitions) != 1 {
		t.Fatalf("transitions=%v", res.Design.RTG.Transitions)
	}
	hw, sw := runBoth(t, src, "f",
		map[string]int{"img": 8, "tmp": 8, "out": 8},
		map[string]int64{"n": 8},
		map[string][]int64{"img": {5, 10, 15, 20, 25, 30, 35, 40}})
	assertEqualMems(t, hw, sw)
}

func TestEndToEndDivByZeroConvention(t *testing.T) {
	src := `void f(int[] a, int[] b, int n) {
	  for (int i = 0; i < n; i = i + 1) {
	    b[i] = 100 / a[i];
	  }
	}`
	hw, sw := runBoth(t, src, "f",
		map[string]int{"a": 4, "b": 4},
		map[string]int64{"n": 4},
		map[string][]int64{"a": {2, 0, -5, 7}})
	assertEqualMems(t, hw, sw)
}

func TestCompileErrors(t *testing.T) {
	src := `void f(int[] a, int n) { a[0] = n; }`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(prog, "ghost", Config{}); err == nil {
		t.Fatal("unknown function must fail")
	}
	if _, err := Compile(prog, "f", Config{ScalarArgs: map[string]int64{"n": 1}}); err == nil ||
		!strings.Contains(err.Error(), "positive size") {
		t.Fatalf("err=%v", err)
	}
	if _, err := Compile(prog, "f", Config{ArraySizes: map[string]int{"a": 4}}); err == nil ||
		!strings.Contains(err.Error(), "needs a value") {
		t.Fatalf("err=%v", err)
	}
}

func TestSplitPartitions(t *testing.T) {
	src := `void f(int[] a) {
	  a[0] = 1;
	  partition;
	  a[1] = 2;
	  partition;
	  a[2] = 3;
	}`
	prog, _ := lang.Parse(src)
	f, _ := prog.FindFunc("f")
	parts := splitPartitions(f.Body)
	if len(parts) != 3 {
		t.Fatalf("parts=%d", len(parts))
	}
}

func TestAutoSplitRespectsScalarLiveness(t *testing.T) {
	src := `void f(int[] a, int[] b) {
	  int x = 5;
	  a[0] = x;
	  a[1] = x + 1;
	  b[0] = a[0] * 2;
	  b[1] = a[1] * 2;
	}`
	prog, _ := lang.Parse(src)
	f, _ := prog.FindFunc("f")
	parts := autoSplit(f.Body, 2)
	if len(parts) != 2 {
		t.Fatalf("parts=%d", len(parts))
	}
	// The split may not land between the decl of x and its last use.
	firstLen := len(parts[0])
	if firstLen < 3 {
		t.Fatalf("split inside x's live range: first part has %d stmts", firstLen)
	}
}

func TestAutoSplitEndToEnd(t *testing.T) {
	src := `void f(int[] a, int[] b, int[] c, int n) {
	  for (int i = 0; i < n; i = i + 1) { b[i] = a[i] + 7; }
	  for (int j = 0; j < n; j = j + 1) { c[j] = b[j] * 2; }
	}`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(prog, "f", Config{
		ArraySizes:     map[string]int{"a": 4, "b": 4, "c": 4},
		ScalarArgs:     map[string]int64{"n": 4},
		AutoPartitions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Meta) != 2 {
		t.Fatalf("auto split produced %d partitions", len(res.Meta))
	}
	ctl, err := rtg.NewController(res.Design, rtgTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.LoadMemory("a", []int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	exec, err := ctl.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Completed {
		t.Fatal("incomplete")
	}
	cMem, _ := ctl.Memory("c")
	want := []int64{16, 18, 20, 22}
	for i := range want {
		if cMem[i] != want[i] {
			t.Fatalf("c=%v want %v", cMem, want)
		}
	}
}

func TestEstimateWeight(t *testing.T) {
	src := `void f(int[] a) { a[0] = a[1] + a[2] * 3; }`
	prog, _ := lang.Parse(src)
	f, _ := prog.FindFunc("f")
	w := EstimateWeight(f.Body[0])
	// store(1) + idx consts + two loads (2 each) + add + mul = at least 7
	if w < 7 {
		t.Fatalf("weight=%d", w)
	}
}

func TestGeneratedXMLRoundTrips(t *testing.T) {
	src := `void f(int[] a, int n) {
	  for (int i = 0; i < n; i = i + 1) { a[i] = a[i] ^ i; }
	}`
	prog, _ := lang.Parse(src)
	res, err := Compile(prog, "f", Config{
		ArraySizes: map[string]int{"a": 8},
		ScalarArgs: map[string]int64{"n": 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := xmlspec.SaveDesign(res.Design, dir); err != nil {
		t.Fatal(err)
	}
	back, err := xmlspec.LoadDesign(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := rtg.NewController(back, rtgTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.LoadMemory("a", []int64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	exec, err := ctl.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Completed {
		t.Fatal("incomplete after XML round trip")
	}
	a, _ := ctl.Memory("a")
	want := []int64{1 ^ 0, 2 ^ 1, 3 ^ 2, 4 ^ 3, 5 ^ 4, 6 ^ 5, 7 ^ 6, 8 ^ 7}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("a=%v want %v", a, want)
		}
	}
}

// rtgTestOptions supplies the explicit bounds the rtg controller
// requires (it deliberately refuses unset ones), generous enough never
// to bind here. These are not "the defaults" — the canonical values
// live only in internal/flow, which these in-package tests cannot
// import (flow imports the compiler).
func rtgTestOptions() rtg.Options {
	return rtg.Options{ClockPeriod: 10, MaxCycles: 10_000_000, MaxConfigs: 1024}
}
