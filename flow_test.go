package repro_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hdl"
	"repro/internal/memfile"
	"repro/internal/workloads"
	"repro/internal/xmlspec"
	"repro/internal/xsl"
)

// TestFigure1FlowComplete executes every arrow of the paper's Figure 1
// once on the FDCT2 design (the diagram's most general case: multiple
// configurations, shared memories, all three XML dialects):
//
//	compiler → datapath.xml / fsm.xml / rtg.xml
//	datapath.xml → datapath.dot, datapath.hds
//	fsm.xml      → fsm.dot, fsm.java
//	rtg.xml      → rtg.dot, rtg.java
//	I/O data (RAMs and stimulus) files → simulation → comparison
//
// plus the user-extensible HDL arrows (VHDL/Verilog).
func TestFigure1FlowComplete(t *testing.T) {
	dir := t.TempDir()
	src, sizes, args, inputs := workloads.FDCTCase("fdct2", 256, true, 5)
	tc := core.TestCase{
		Name: "fdct2", Source: src, Func: "fdct",
		ArraySizes: sizes, ScalarArgs: args, Inputs: inputs,
	}
	res, err := core.RunCase(tc, core.Options{WorkDir: dir, EmitArtifacts: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || !res.Passed {
		t.Fatalf("flow failed: %v %v", res.Err, res.Failed())
	}

	// Every Figure 1 artifact must exist and be non-trivial.
	expect := map[string]string{
		"rtg":              "<rtg",
		"datapath:fdct_p1": "<datapath",
		"datapath:fdct_p2": "<datapath",
		"fsm:fdct_p1_ctl":  "<fsm",
		"fsm:fdct_p2_ctl":  "<fsm",
		"dot:rtg":          "digraph",
		"dot:fdct_p1":      "digraph",
		"dot:fdct_p1_ctl":  "digraph",
		"hds:fdct_p1":      "[design]",
		"java:fdct_p1_ctl": "public class",
		"java:rtg":         "public class",
		"mem-in:img":       "",
		"mem:out":          "",
	}
	for label, marker := range expect {
		path, ok := res.Artifacts[label]
		if !ok {
			t.Errorf("missing Figure 1 artifact %q", label)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("artifact %q unreadable: %v", label, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("artifact %q empty", label)
		}
		if marker != "" && !strings.Contains(string(data), marker) {
			t.Errorf("artifact %q lacks marker %q", label, marker)
		}
	}

	// The written design bundle must load back and still validate.
	design, err := xmlspec.LoadDesign(filepath.Join(dir, "fdct2"))
	if err != nil {
		t.Fatal(err)
	}

	// HDL arrows (the "chosen language" extension point).
	for name, dp := range design.Datapaths {
		if out, err := hdl.VHDLDatapath(dp, nil); err != nil || !strings.Contains(out, "entity") {
			t.Errorf("VHDL for %s: %v", name, err)
		}
		if out, err := hdl.VerilogDatapath(dp, nil); err != nil || !strings.Contains(out, "module") {
			t.Errorf("Verilog for %s: %v", name, err)
		}
	}
	for name, fsm := range design.FSMs {
		if out, err := hdl.VHDLFSM(fsm); err != nil || !strings.Contains(out, "entity") {
			t.Errorf("VHDL FSM for %s: %v", name, err)
		}
		if out, err := hdl.VerilogFSM(fsm); err != nil || !strings.Contains(out, "module") {
			t.Errorf("Verilog FSM for %s: %v", name, err)
		}
	}

	// Memory-file round trip: the simulated output file re-loads and
	// matches what the verification compared in memory.
	out, err := memfile.Load(res.Artifacts["mem:out"])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != sizes["out"] {
		t.Fatalf("out.mem has %d words, want %d", len(out), sizes["out"])
	}

	// The generic stylesheet engine handles the written files directly
	// (user-defined rules path).
	raw, err := os.ReadFile(res.Artifacts["datapath:fdct_p1"])
	if err != nil {
		t.Fatal(err)
	}
	root, err := xsl.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	sheet := &xsl.Stylesheet{Rules: []xsl.Rule{
		{Match: "datapath", Template: "{@name}: {count:operators/operator} operators\n"},
	}}
	summary, err := xsl.Transform(sheet, root)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "fdct_p1:") {
		t.Fatalf("summary=%q", summary)
	}
}

// TestTableIShape asserts the qualitative relationships of Table I that
// the paper's evaluation establishes, at reduced image size so the check
// stays fast in the regular test run:
//
//   - FDCT2 partitions each have roughly half of FDCT1's operators and
//     size columns (paper: 169 vs 90/90).
//   - Hamming is far smaller than either FDCT on every column.
//   - Each FDCT2 partition simulates in well under FDCT1's time.
func TestTableIShape(t *testing.T) {
	run := func(tc core.TestCase) *core.CaseResult {
		t.Helper()
		res, err := core.RunCase(tc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil || !res.Passed {
			t.Fatalf("%s failed: %v %v", tc.Name, res.Err, res.Failed())
		}
		return res
	}
	fdct1 := run(fdctTestCase("fdct1", 1024, false))
	fdct2 := run(fdctTestCase("fdct2", 1024, true))
	hamming := run(hammingTestCase(64))

	f1 := fdct1.Partitions[0]
	for _, p := range fdct2.Partitions {
		if ratio := float64(f1.Operators) / float64(p.Operators); ratio < 1.5 || ratio > 2.6 {
			t.Errorf("operators ratio FDCT1/%s = %.2f, want ~2 (paper: 169/90)", p.ID, ratio)
		}
		if p.XMLDatapathLoC >= f1.XMLDatapathLoC {
			t.Errorf("partition %s datapath XML not smaller than FDCT1", p.ID)
		}
		if p.SimWall >= f1.SimWall {
			t.Errorf("partition %s sim time %v not below FDCT1 %v", p.ID, p.SimWall, f1.SimWall)
		}
	}
	h := hamming.Partitions[0]
	if h.Operators*2 >= f1.Operators {
		t.Errorf("hamming operators %d not far below FDCT1 %d", h.Operators, f1.Operators)
	}
	if h.SimWall >= f1.SimWall {
		t.Errorf("hamming sim %v not below FDCT1 %v", h.SimWall, f1.SimWall)
	}
}

// TestScalingIsRoughlyLinear checks the in-text claim's shape cheaply:
// quadrupling the image quadruples the simulated cycle count (wall time
// is too noisy for CI, cycles are exact).
func TestScalingIsRoughlyLinear(t *testing.T) {
	cycles := func(pixels int) uint64 {
		res, err := core.RunCase(fdctTestCase("fdct1", pixels, false), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil || !res.Passed {
			t.Fatalf("failed: %v", res.Err)
		}
		return res.Partitions[0].Cycles
	}
	c1 := cycles(512)
	c4 := cycles(2048)
	ratio := float64(c4) / float64(c1)
	if ratio < 3.8 || ratio > 4.2 {
		t.Fatalf("cycle ratio %0.2f for 4x pixels, want ~4 (linear)", ratio)
	}
}
