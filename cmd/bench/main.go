// Command bench runs the repeatable benchmark scenarios and records the
// performance trajectory as machine-readable BENCH_<name>.json files.
//
// Usage:
//
//	bench -list                      # show the scenario registry (name, family, pinned)
//	bench -list-workloads            # show the workload families and their parameters
//	bench -list-backends             # show the registered simulator backends
//	bench                            # run the pinned set, write BENCH_*.json to .
//	bench -backend heapref           # same scenarios on the heap kernel
//	bench -scenarios all -out bout   # run everything, write files to bout/
//	bench -baseline bench/baseline/twolevel  # fail on >25% events/sec drop or allocs/event rise
//	bench -update-baseline           # refresh the checked-in baseline instead
//	bench -reps 5 -json              # more repetitions; JSON lines on stdout
//	bench -scenarios replay-hamming-x64 -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/flow"
	"repro/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list          = flag.Bool("list", false, "list scenarios and exit")
		listWorkloads = flag.Bool("list-workloads", false, "list workload families with their parameters and exit")
		listBackends  = flag.Bool("list-backends", false, "list registered simulator backends and exit")
		backend       = flag.String("backend", flow.DefaultBackend, "simulator backend to run the scenarios on")
		selector      = flag.String("scenarios", "pinned", "scenarios to run: pinned, all, or comma-separated names")
		reps          = flag.Int("reps", 3, "timed repetitions per scenario (best events/sec wins)")
		out           = flag.String("out", ".", "directory for BENCH_<name>.json files")
		baseline      = flag.String("baseline", "", "baseline directory to compare against (exit 1 on regression)")
		threshold     = flag.Float64("threshold", 0.25, "allowed regression vs baseline on both gated metrics (0.25 = fail below 75% of baseline events/sec or above 125% of baseline allocs/event)")
		update        = flag.Bool("update-baseline", false, "write results into -baseline instead of comparing")
		asJSON        = flag.Bool("json", false, "emit one JSON object per scenario on stdout")
		cpuprofile    = flag.String("cpuprofile", "", "write a CPU profile of the scenario runs to this file")
		memprofile    = flag.String("memprofile", "", "write a heap profile to this file after the scenario runs")
	)
	flag.Parse()

	if *listBackends {
		// First column stays the bare name: scripted consumers
		// (`-list-backends | awk '{print $1}'`) enumerate backends from it.
		tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		for _, b := range flow.Backends() {
			gang := "-"
			if b.SupportsGang {
				gang = "gang"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", b.Name, b.Kind, gang, b.Desc)
		}
		return tw.Flush()
	}
	if *listWorkloads {
		tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		for _, w := range workloads.All() {
			fmt.Fprintf(tw, "%s\t%s\n", w.Name(), w.Doc())
			for _, p := range w.Params() {
				fmt.Fprintf(tw, "  %s=%d\t%s [%d, %d]\n", p.Name, p.Default, p.Doc, p.Min, p.Max)
			}
		}
		return tw.Flush()
	}
	if _, err := flow.LookupBackend(*backend); err != nil {
		return err
	}
	all := bench.ScenariosFor(*backend)
	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		for _, sc := range all {
			pin := ""
			if sc.Pinned {
				pin = "pinned"
			}
			family := sc.Family
			if family == "" {
				family = "-"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", sc.Name, family, pin, sc.Desc)
		}
		return tw.Flush()
	}

	selected, err := bench.Select(*selector, all)
	if err != nil {
		return err
	}
	if len(selected) == 0 {
		return fmt.Errorf("no scenarios selected by %q", *selector)
	}
	if *update && *baseline == "" {
		return fmt.Errorf("-update-baseline requires -baseline")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	results := map[string]*bench.Result{}
	enc := json.NewEncoder(os.Stdout)
	for _, sc := range selected {
		res, err := bench.Run(sc, *reps)
		if err != nil {
			return err
		}
		results[res.Name] = res
		dir := *out
		if *update {
			dir = *baseline
		}
		path, err := bench.Save(res, dir)
		if err != nil {
			return err
		}
		if *asJSON {
			if err := enc.Encode(res); err != nil {
				return err
			}
		} else {
			extra := ""
			if res.Configs > 0 {
				extra = fmt.Sprintf("  %8.0f configs/sec  %8.1f allocs/config",
					res.ConfigsPerSec, res.AllocsPerCfg)
			}
			fmt.Printf("%-22s %12.0f events/sec  %8.3f allocs/event  %10d events  %8.1fms%s  -> %s\n",
				res.Name, res.EventsPerSec, res.AllocsPerEvent, res.Events,
				float64(res.WallNS)/1e6, extra, path)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // materialize the steady-state heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}

	if *baseline != "" && !*update {
		base, err := bench.Load(*baseline)
		if err != nil {
			return err
		}
		if len(base) == 0 {
			return fmt.Errorf("no BENCH_*.json baseline found in %s", *baseline)
		}
		regs := bench.Compare(results, base, *threshold)
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "REGRESSION:", r)
			}
			return fmt.Errorf("%d regression(s) beyond %.0f%% (events/sec or allocs/event) vs %s",
				len(regs), *threshold*100, *baseline)
		}
		fmt.Printf("baseline check: %d scenario(s) within %.0f%% of %s (events/sec and allocs/event)\n",
			len(base), *threshold*100, *baseline)
	}
	return nil
}
