// Command gnc is the compiler driver (the Galadriel & Nenya stand-in):
// it compiles MiniJ functions into the datapath/fsm/rtg XML dialects
// and, on request, their dot/java/hds translations, or verifies each
// compiled function against the golden interpreter with the parallel
// suite runner — all through the flow pipeline API.
//
// Usage:
//
//	gnc -src fdct.mj -func fdct -size img=4096 -size tmp=4096 \
//	    -size out=4096 -arg nblocks=64 -out build/ -emit
//	gnc -src lib.mj -func f,g,h -verify -j 4 -failfast -json
//	gnc -src lib.mj -func f -verify -backend heapref
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/cmd/internal/cliutil"
	"repro/internal/core"
	"repro/internal/flow"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gnc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		srcPath  = flag.String("src", "", "MiniJ source file")
		funcName = flag.String("func", "", "function(s) to compile, comma-separated")
		outDir   = flag.String("out", "build", "output directory")
		auto     = flag.Int("auto", 0, "auto-split into N temporal partitions")
		width    = flag.Int("width", 32, "datapath word width")
		emit     = flag.Bool("emit", false, "also emit dot/java/hds translations")
		verify   = flag.Bool("verify", false, "simulate each compiled function and verify against the golden interpreter")
		sizes    = cliutil.KVInts{}
		args     = cliutil.KVInt64s{}
		rf       cliutil.RunnerFlags
		ff       cliutil.FlowFlags
	)
	flag.Var(sizes, "size", "array size: name=depth (repeatable)")
	flag.Var(args, "arg", "scalar argument: name=value (repeatable)")
	rf.Register(nil)
	ff.Register(nil)
	flag.Parse()
	if *srcPath == "" || *funcName == "" {
		flag.Usage()
		return fmt.Errorf("-src and -func are required")
	}
	src, err := os.ReadFile(*srcPath)
	if err != nil {
		return err
	}
	pipe, err := flow.New(append(ff.Options(),
		flow.WithWidth(*width), flow.WithAutoPartitions(*auto))...)
	if err != nil {
		return err
	}
	// In -verify -json mode stdout must stay pure JSON Lines; route the
	// compile listing to stderr.
	info := io.Writer(os.Stdout)
	if *verify && rf.JSON {
		info = os.Stderr
	}
	funcs := strings.Split(*funcName, ",")
	for _, fn := range funcs {
		fn = strings.TrimSpace(fn)
		dir := *outDir
		if len(funcs) > 1 {
			dir = filepath.Join(*outDir, fn)
		}
		compiled, err := pipe.Compile(flow.Source{
			Name: fn, Text: string(src), Func: fn,
			ArraySizes: sizes, ScalarArgs: args,
		})
		if err != nil {
			return err
		}
		files, err := flow.WriteDesignArtifacts(compiled.Design, dir, *emit)
		if err != nil {
			return err
		}
		for label, path := range files {
			fmt.Fprintf(info, "%-24s %s\n", label, path)
		}
		for _, m := range compiled.Partitions {
			fmt.Fprintf(info, "%s: datapath=%s operators=%d states=%d\n", m.ID, m.Datapath, m.Operators, m.States)
		}
	}
	if !*verify {
		return nil
	}
	return verifyFuncs(string(src), funcs, sizes, args, *width, *auto, rf, ff)
}

// verifyFuncs runs the full compile→simulate→golden-compare flow for
// each function through the parallel suite runner, the same machinery
// the testsuite command uses for the regression suite.
func verifyFuncs(src string, funcs []string, sizes map[string]int, args map[string]int64,
	width, auto int, rf cliutil.RunnerFlags, ff cliutil.FlowFlags) error {
	suite := &core.Suite{Name: "gnc-verify"}
	for _, fn := range funcs {
		fn = strings.TrimSpace(fn)
		suite.Cases = append(suite.Cases, core.TestCase{
			Name:       fn,
			Source:     src,
			Func:       fn,
			ArraySizes: sizes,
			ScalarArgs: args,
		})
	}
	runner := &core.Runner{Workers: rf.Jobs, Timeout: rf.Timeout, FailFast: rf.FailFast}
	res := runner.Run(context.Background(), suite, core.Options{
		Width:          width,
		AutoPartitions: auto,
		Backend:        ff.Backend,
		ClockPeriod:    ff.Period,
		MaxCycles:      ff.Cycles,
	})
	if rf.JSON {
		if err := res.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		res.Report(os.Stdout)
	}
	if !res.Passed() {
		return fmt.Errorf("verification failed")
	}
	return nil
}
