// Command gnc is the compiler driver (the Galadriel & Nenya stand-in):
// it compiles a MiniJ source file into the datapath/fsm/rtg XML dialects
// and, on request, their dot/java/hds translations.
//
// Usage:
//
//	gnc -src fdct.mj -func fdct -size img=4096 -size tmp=4096 \
//	    -size out=4096 -arg nblocks=64 -out build/ -emit
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/cliutil"
	"repro/internal/compiler"
	"repro/internal/lang"
	"repro/internal/xmlspec"
	"repro/internal/xsl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gnc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		srcPath  = flag.String("src", "", "MiniJ source file")
		funcName = flag.String("func", "", "function to compile")
		outDir   = flag.String("out", "build", "output directory")
		auto     = flag.Int("auto", 0, "auto-split into N temporal partitions")
		width    = flag.Int("width", 32, "datapath word width")
		emit     = flag.Bool("emit", false, "also emit dot/java/hds translations")
		sizes    = cliutil.KVInts{}
		args     = cliutil.KVInt64s{}
	)
	flag.Var(sizes, "size", "array size: name=depth (repeatable)")
	flag.Var(args, "arg", "scalar argument: name=value (repeatable)")
	flag.Parse()
	if *srcPath == "" || *funcName == "" {
		flag.Usage()
		return fmt.Errorf("-src and -func are required")
	}
	src, err := os.ReadFile(*srcPath)
	if err != nil {
		return err
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		return err
	}
	res, err := compiler.Compile(prog, *funcName, compiler.Config{
		Width:          *width,
		ArraySizes:     sizes,
		ScalarArgs:     args,
		AutoPartitions: *auto,
	})
	if err != nil {
		return err
	}
	files, err := xmlspec.SaveDesign(res.Design, *outDir)
	if err != nil {
		return err
	}
	for label, path := range files {
		fmt.Printf("%-24s %s\n", label, path)
	}
	for _, m := range res.Meta {
		fmt.Printf("%s: datapath=%s operators=%d states=%d\n", m.ID, m.Datapath, m.Operators, m.States)
	}
	if !*emit {
		return nil
	}
	emitOne := func(name, content string) error {
		path := *outDir + "/" + name
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("%-24s %s\n", "emit", path)
		return nil
	}
	rtgDoc, err := xmlspec.Marshal(res.Design.RTG)
	if err != nil {
		return err
	}
	if out, err := xsl.TransformBytes(xsl.RTGToDot(), rtgDoc); err != nil {
		return err
	} else if err := emitOne("rtg.dot", out); err != nil {
		return err
	}
	if out, err := xsl.TransformBytes(xsl.RTGToJava(), rtgDoc); err != nil {
		return err
	} else if err := emitOne("rtg.java", out); err != nil {
		return err
	}
	for name, dp := range res.Design.Datapaths {
		doc, err := xmlspec.Marshal(dp)
		if err != nil {
			return err
		}
		if out, err := xsl.TransformBytes(xsl.DatapathToDot(), doc); err != nil {
			return err
		} else if err := emitOne(name+".dot", out); err != nil {
			return err
		}
		if out, err := xsl.TransformBytes(xsl.DatapathToHDS(), doc); err != nil {
			return err
		} else if err := emitOne(name+".hds", out); err != nil {
			return err
		}
	}
	for name, fsm := range res.Design.FSMs {
		doc, err := xmlspec.Marshal(fsm)
		if err != nil {
			return err
		}
		if out, err := xsl.TransformBytes(xsl.FSMToDot(), doc); err != nil {
			return err
		} else if err := emitOne(name+".dot", out); err != nil {
			return err
		}
		if out, err := xsl.TransformBytes(xsl.FSMToJava(), doc); err != nil {
			return err
		} else if err := emitOne(name+".java", out); err != nil {
			return err
		}
	}
	return nil
}
