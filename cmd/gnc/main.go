// Command gnc is the compiler driver (the Galadriel & Nenya stand-in):
// it compiles MiniJ functions into the datapath/fsm/rtg XML dialects
// and, on request, their dot/java/hds translations, or verifies each
// compiled function against the golden interpreter with the parallel
// suite runner.
//
// Usage:
//
//	gnc -src fdct.mj -func fdct -size img=4096 -size tmp=4096 \
//	    -size out=4096 -arg nblocks=64 -out build/ -emit
//	gnc -src lib.mj -func f,g,h -verify -j 4 -failfast -json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/cmd/internal/cliutil"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/xmlspec"
	"repro/internal/xsl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gnc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		srcPath  = flag.String("src", "", "MiniJ source file")
		funcName = flag.String("func", "", "function(s) to compile, comma-separated")
		outDir   = flag.String("out", "build", "output directory")
		auto     = flag.Int("auto", 0, "auto-split into N temporal partitions")
		width    = flag.Int("width", 32, "datapath word width")
		emit     = flag.Bool("emit", false, "also emit dot/java/hds translations")
		verify   = flag.Bool("verify", false, "simulate each compiled function and verify against the golden interpreter")
		sizes    = cliutil.KVInts{}
		args     = cliutil.KVInt64s{}
		rf       cliutil.RunnerFlags
	)
	flag.Var(sizes, "size", "array size: name=depth (repeatable)")
	flag.Var(args, "arg", "scalar argument: name=value (repeatable)")
	rf.Register(nil)
	flag.Parse()
	if *srcPath == "" || *funcName == "" {
		flag.Usage()
		return fmt.Errorf("-src and -func are required")
	}
	src, err := os.ReadFile(*srcPath)
	if err != nil {
		return err
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		return err
	}
	// In -verify -json mode stdout must stay pure JSON Lines; route the
	// compile listing to stderr.
	info := io.Writer(os.Stdout)
	if *verify && rf.JSON {
		info = os.Stderr
	}
	funcs := strings.Split(*funcName, ",")
	for _, fn := range funcs {
		fn = strings.TrimSpace(fn)
		dir := *outDir
		if len(funcs) > 1 {
			dir = filepath.Join(*outDir, fn)
		}
		res, err := compiler.Compile(prog, fn, compiler.Config{
			Width:          *width,
			ArraySizes:     sizes,
			ScalarArgs:     args,
			AutoPartitions: *auto,
		})
		if err != nil {
			return err
		}
		files, err := xmlspec.SaveDesign(res.Design, dir)
		if err != nil {
			return err
		}
		for label, path := range files {
			fmt.Fprintf(info, "%-24s %s\n", label, path)
		}
		for _, m := range res.Meta {
			fmt.Fprintf(info, "%s: datapath=%s operators=%d states=%d\n", m.ID, m.Datapath, m.Operators, m.States)
		}
		if *emit {
			if err := emitTranslations(info, dir, res.Design); err != nil {
				return err
			}
		}
	}
	if !*verify {
		return nil
	}
	return verifyFuncs(string(src), funcs, sizes, args, *width, *auto, rf)
}

// verifyFuncs runs the full compile→simulate→golden-compare flow for
// each function through the parallel suite runner, the same machinery
// the testsuite command uses for the regression suite.
func verifyFuncs(src string, funcs []string, sizes map[string]int, args map[string]int64, width, auto int, rf cliutil.RunnerFlags) error {
	suite := &core.Suite{Name: "gnc-verify"}
	for _, fn := range funcs {
		fn = strings.TrimSpace(fn)
		suite.Cases = append(suite.Cases, core.TestCase{
			Name:       fn,
			Source:     src,
			Func:       fn,
			ArraySizes: sizes,
			ScalarArgs: args,
		})
	}
	runner := &core.Runner{Workers: rf.Jobs, Timeout: rf.Timeout, FailFast: rf.FailFast}
	res := runner.Run(context.Background(), suite, core.Options{Width: width, AutoPartitions: auto})
	if rf.JSON {
		if err := res.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		res.Report(os.Stdout)
	}
	if !res.Passed() {
		return fmt.Errorf("verification failed")
	}
	return nil
}

func emitTranslations(info io.Writer, outDir string, design *xmlspec.Design) error {
	emitOne := func(name, content string) error {
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(info, "%-24s %s\n", "emit", path)
		return nil
	}
	rtgDoc, err := xmlspec.Marshal(design.RTG)
	if err != nil {
		return err
	}
	if out, err := xsl.TransformBytes(xsl.RTGToDot(), rtgDoc); err != nil {
		return err
	} else if err := emitOne("rtg.dot", out); err != nil {
		return err
	}
	if out, err := xsl.TransformBytes(xsl.RTGToJava(), rtgDoc); err != nil {
		return err
	} else if err := emitOne("rtg.java", out); err != nil {
		return err
	}
	for name, dp := range design.Datapaths {
		doc, err := xmlspec.Marshal(dp)
		if err != nil {
			return err
		}
		if out, err := xsl.TransformBytes(xsl.DatapathToDot(), doc); err != nil {
			return err
		} else if err := emitOne(name+".dot", out); err != nil {
			return err
		}
		if out, err := xsl.TransformBytes(xsl.DatapathToHDS(), doc); err != nil {
			return err
		} else if err := emitOne(name+".hds", out); err != nil {
			return err
		}
	}
	for name, fsm := range design.FSMs {
		doc, err := xmlspec.Marshal(fsm)
		if err != nil {
			return err
		}
		if out, err := xsl.TransformBytes(xsl.FSMToDot(), doc); err != nil {
			return err
		} else if err := emitOne(name+".dot", out); err != nil {
			return err
		}
		if out, err := xsl.TransformBytes(xsl.FSMToJava(), doc); err != nil {
			return err
		} else if err := emitOne(name+".java", out); err != nil {
			return err
		}
	}
	return nil
}
