// Command gnc is the compiler driver (the Galadriel & Nenya stand-in):
// it compiles MiniJ functions into the datapath/fsm/rtg XML dialects
// and, on request, their dot/java/hds translations, or verifies each
// compiled function against the golden interpreter with the parallel
// suite runner — all through the flow pipeline API. Instead of a
// source file, -workload materializes a registry workload (source,
// sizes, inputs and reference expectations all derived from the
// family's parameters).
//
// Usage:
//
//	gnc -src fdct.mj -func fdct -size img=4096 -size tmp=4096 \
//	    -size out=4096 -arg nblocks=64 -out build/ -emit
//	gnc -src lib.mj -func f,g,h -verify -j 4 -failfast -json
//	gnc -src lib.mj -func f -verify -backend heapref
//	gnc -workload fir,n=1024,taps=16 -out build/ -emit
//	gnc -workload matmul,n=32 -verify
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/cmd/internal/cliutil"
	"repro/internal/core"
	"repro/internal/flow"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gnc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		srcPath  = flag.String("src", "", "MiniJ source file")
		funcName = flag.String("func", "", "function(s) to compile, comma-separated")
		outDir   = flag.String("out", "build", "output directory")
		auto     = flag.Int("auto", 0, "auto-split into N temporal partitions")
		width    = flag.Int("width", 32, "datapath word width")
		emit     = flag.Bool("emit", false, "also emit dot/java/hds translations")
		verify   = flag.Bool("verify", false, "simulate each compiled function and verify against the golden interpreter")
		sizes    = cliutil.KVInts{}
		args     = cliutil.KVInt64s{}
		workload cliutil.WorkloadSpec
		rf       cliutil.RunnerFlags
		ff       cliutil.FlowFlags
	)
	flag.Var(sizes, "size", "array size: name=depth (repeatable)")
	flag.Var(args, "arg", "scalar argument: name=value (repeatable)")
	workload.Register(nil)
	rf.Register(nil)
	ff.Register(nil)
	flag.Parse()
	if workload.Name != "" {
		if *srcPath != "" || *funcName != "" {
			return fmt.Errorf("-workload and -src/-func are mutually exclusive")
		}
		if len(sizes) > 0 || len(args) > 0 {
			return fmt.Errorf("-workload derives sizes and arguments from its parameters; pass them inside the spec (e.g. -workload %s,param=value) instead of -size/-arg", workload.Name)
		}
		// The reference model only matters when verifying; compile-only
		// runs build the inputs alone.
		c, err := workload.CaseInputs()
		if *verify {
			c, err = workload.Case()
		}
		if err != nil {
			return err
		}
		return drive([]core.TestCase{core.WorkloadCase(c)}, false,
			*outDir, *width, *auto, *emit, *verify, rf, ff)
	}
	if *srcPath == "" || *funcName == "" {
		flag.Usage()
		return fmt.Errorf("-src and -func are required (or -workload)")
	}
	src, err := os.ReadFile(*srcPath)
	if err != nil {
		return err
	}
	funcs := strings.Split(*funcName, ",")
	cases := make([]core.TestCase, 0, len(funcs))
	for _, fn := range funcs {
		fn = strings.TrimSpace(fn)
		cases = append(cases, core.TestCase{
			Name:       fn,
			Source:     string(src),
			Func:       fn,
			ArraySizes: sizes,
			ScalarArgs: args,
		})
	}
	return drive(cases, len(cases) > 1, *outDir, *width, *auto, *emit, *verify, rf, ff)
}

// drive compiles every case, writes its artifacts (under a per-case
// subdirectory when perCaseDir is set), and — with -verify — runs the
// cases through the parallel suite runner, the same machinery the
// testsuite command uses for the regression suite.
func drive(cases []core.TestCase, perCaseDir bool, outDir string, width, auto int,
	emit, verify bool, rf cliutil.RunnerFlags, ff cliutil.FlowFlags) error {
	pipe, err := flow.New(append(ff.Options(),
		flow.WithWidth(width), flow.WithAutoPartitions(auto))...)
	if err != nil {
		return err
	}
	// In -verify -json mode stdout must stay pure JSON Lines; route the
	// compile listing to stderr.
	info := io.Writer(os.Stdout)
	if verify && rf.JSON {
		info = os.Stderr
	}
	for _, tc := range cases {
		dir := outDir
		if perCaseDir {
			dir = filepath.Join(outDir, tc.Name)
		}
		compiled, err := pipe.Compile(tc.FlowSource())
		if err != nil {
			return err
		}
		files, err := flow.WriteDesignArtifacts(compiled.Design, dir, emit)
		if err != nil {
			return err
		}
		for label, path := range files {
			fmt.Fprintf(info, "%-24s %s\n", label, path)
		}
		for _, m := range compiled.Partitions {
			fmt.Fprintf(info, "%s: datapath=%s operators=%d states=%d\n", m.ID, m.Datapath, m.Operators, m.States)
		}
	}
	if !verify {
		return nil
	}
	suite := &core.Suite{Name: "gnc-verify", Cases: cases}
	runner := rf.Runner()
	res := runner.Run(context.Background(), suite, core.Options{
		Width:          width,
		AutoPartitions: auto,
		Backend:        ff.Backend,
		ClockPeriod:    ff.Period,
		MaxCycles:      ff.Cycles,
	})
	if rf.JSON {
		if err := res.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		res.Report(os.Stdout)
	}
	if !res.Passed() {
		return fmt.Errorf("verification failed")
	}
	return nil
}
