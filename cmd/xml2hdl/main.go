// Command xml2hdl translates a datapath or fsm XML document into VHDL,
// Verilog, behavioural Java or the hds simulator text — the
// user-extensible translation layer of the infrastructure.
//
// Usage:
//
//	xml2hdl -in build/fdct_p1.dp.xml -lang vhdl > fdct_p1.vhd
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hdl"
	"repro/internal/xmlspec"
	"repro/internal/xsl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xml2hdl:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "input XML file (datapath or fsm)")
	lang := flag.String("lang", "vhdl", "target: vhdl, verilog, java, hds")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("-in is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	root, err := xsl.Parse(data)
	if err != nil {
		return err
	}
	var out string
	switch root.Name {
	case "datapath":
		dp, err := xmlspec.ParseDatapath(data)
		if err != nil {
			return err
		}
		switch *lang {
		case "vhdl":
			out, err = hdl.VHDLDatapath(dp, nil)
		case "verilog":
			out, err = hdl.VerilogDatapath(dp, nil)
		case "hds":
			out, err = xsl.TransformBytes(xsl.DatapathToHDS(), data)
		default:
			return fmt.Errorf("datapath documents translate to vhdl, verilog or hds (not %q)", *lang)
		}
		if err != nil {
			return err
		}
	case "fsm":
		f, err := xmlspec.ParseFSM(data)
		if err != nil {
			return err
		}
		switch *lang {
		case "vhdl":
			out, err = hdl.VHDLFSM(f)
		case "verilog":
			out, err = hdl.VerilogFSM(f)
		case "java":
			out, err = xsl.TransformBytes(xsl.FSMToJava(), data)
		default:
			return fmt.Errorf("fsm documents translate to vhdl, verilog or java (not %q)", *lang)
		}
		if err != nil {
			return err
		}
	case "rtg":
		switch *lang {
		case "java":
			out, err = xsl.TransformBytes(xsl.RTGToJava(), data)
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("rtg documents translate to java (not %q)", *lang)
		}
	default:
		return fmt.Errorf("unknown document root %q", root.Name)
	}
	_, err = os.Stdout.WriteString(out)
	return err
}
