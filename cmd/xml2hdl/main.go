// Command xml2hdl translates a datapath or fsm XML document into VHDL,
// Verilog, behavioural Java or the hds simulator text — the
// user-extensible translation layer of the infrastructure, dispatched
// through flow.TranslateDocument.
//
// Usage:
//
//	xml2hdl -in build/fdct_p1.dp.xml -lang vhdl > fdct_p1.vhd
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/flow"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // usage already printed, clean exit
		}
		fmt.Fprintln(os.Stderr, "xml2hdl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("xml2hdl", flag.ContinueOnError)
	in := fs.String("in", "", "input XML file (datapath or fsm)")
	lang := fs.String("lang", "vhdl", "target: vhdl, verilog, java, hds, dot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	res, err := flow.TranslateDocument(data, *lang)
	if err != nil {
		return err
	}
	_, err = io.WriteString(out, res)
	return err
}
