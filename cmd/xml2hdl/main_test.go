package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/xmlspec"
)

// writeHandcrafted mirrors the examples/handcrafted accumulator in the
// XML dialects (see cmd/xml2dot's twin fixture).
func writeHandcrafted(t *testing.T) (dpPath, fsmPath string) {
	t.Helper()
	dp := &xmlspec.Datapath{
		Name:  "acc",
		Width: 32,
		Operators: []xmlspec.Operator{
			{ID: "src", Type: "stim"},
			{ID: "r_acc", Type: "reg"},
			{ID: "add0", Type: "add"},
			{ID: "cap", Type: "sink"},
		},
		Connections: []xmlspec.Connection{
			{From: "r_acc.q", To: "add0.a"},
			{From: "src.out", To: "add0.b"},
			{From: "add0.y", To: "r_acc.d"},
			{From: "r_acc.q", To: "cap.in"},
		},
		Controls: []xmlspec.Control{
			{Name: "en_acc", Targets: []xmlspec.ControlTo{{Port: "r_acc.en"}}},
			{Name: "en_cap", Targets: []xmlspec.ControlTo{{Port: "cap.en"}}},
		},
		Statuses: []xmlspec.Status{{Name: "last", From: "src.last"}},
	}
	fsm := &xmlspec.FSM{
		Name:    "acc_ctl",
		Inputs:  []xmlspec.FSMSignal{{Name: "last"}},
		Outputs: []xmlspec.FSMSignal{{Name: "en_acc"}, {Name: "en_cap"}, {Name: "done"}},
		States: []xmlspec.State{
			{
				Name: "RUN", Initial: true,
				Assigns: []xmlspec.Assign{
					{Signal: "en_acc", Value: 1},
					{Signal: "en_cap", Value: 1},
				},
				Transitions: []xmlspec.Transition{
					{Cond: "!last", Next: "RUN"},
					{Next: "END"},
				},
			},
			{Name: "END", Final: true, Assigns: []xmlspec.Assign{{Signal: "done", Value: 1}}},
		},
	}
	dir := t.TempDir()
	dpDoc, err := xmlspec.Marshal(dp)
	if err != nil {
		t.Fatal(err)
	}
	fsmDoc, err := xmlspec.Marshal(fsm)
	if err != nil {
		t.Fatal(err)
	}
	dpPath = filepath.Join(dir, "acc.dp.xml")
	fsmPath = filepath.Join(dir, "acc_ctl.fsm.xml")
	if err := os.WriteFile(dpPath, dpDoc, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fsmPath, fsmDoc, 0o644); err != nil {
		t.Fatal(err)
	}
	return dpPath, fsmPath
}

func TestXML2HDLSmoke(t *testing.T) {
	dpPath, fsmPath := writeHandcrafted(t)
	cases := []struct {
		in, lang, marker string
	}{
		{dpPath, "vhdl", "entity"},
		{dpPath, "verilog", "module"},
		{dpPath, "hds", "[design]"},
		{dpPath, "dot", "digraph"},
		{fsmPath, "vhdl", "entity"},
		{fsmPath, "verilog", "module"},
		{fsmPath, "java", "public class"},
	}
	for _, c := range cases {
		var sb strings.Builder
		if err := run([]string{"-in", c.in, "-lang", c.lang}, &sb); err != nil {
			t.Errorf("%s -lang %s: %v", filepath.Base(c.in), c.lang, err)
			continue
		}
		if !strings.Contains(sb.String(), c.marker) {
			t.Errorf("%s -lang %s: output lacks %q", filepath.Base(c.in), c.lang, c.marker)
		}
	}
}

func TestXML2HDLErrors(t *testing.T) {
	dpPath, fsmPath := writeHandcrafted(t)
	if err := run([]string{}, &strings.Builder{}); err == nil {
		t.Error("missing -in must fail")
	}
	if err := run([]string{"-in", dpPath, "-lang", "java"}, &strings.Builder{}); err == nil {
		t.Error("datapath-to-java must be rejected")
	}
	if err := run([]string{"-in", fsmPath, "-lang", "hds"}, &strings.Builder{}); err == nil {
		t.Error("fsm-to-hds must be rejected")
	}
}
