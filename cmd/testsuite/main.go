// Command testsuite is the ANT-build analog: one command re-verifies the
// compiler's regression suite by functional simulation against each
// workload family's golden reference model, and optionally regenerates
// the paper's Table I. The suite is registry-driven: every family in
// internal/workloads contributes its suite-preset case, so a newly
// registered workload is regression-tested with no changes here.
//
// Usage:
//
//	testsuite                 # run the regression suite, one worker per CPU
//	testsuite -j 4            # shard the cases across 4 workers
//	testsuite -json           # one JSON object per case (CI artifacts)
//	testsuite -failfast -timeout 30s
//	testsuite -repeat 8       # verify sweep: 8 reset-and-replay rounds per case
//	testsuite -backend heapref # run the whole suite on the heap kernel
//	testsuite -table1         # reproduce Table I (plus the newer families)
//	testsuite -pixels 65536   # FDCT cases over a larger image
//
// Scenario engine (docs/SCENARIOS.md):
//
//	testsuite -scenario examples/scenarios/mixed-poisson.json -trace run.jsonl
//	testsuite -replay run.jsonl                      # must be bit-identical
//	testsuite -replay run.jsonl -backend compiled    # replay on another backend
//	testsuite -replay run.jsonl -counterfactual faults=off
//
// Sharded sweeps (docs/SWEEP.md):
//
//	testsuite sweep run -spec campaign.json -shards 8 -shard-workers 4 -out-dir out/
//	testsuite sweep run -spec campaign.json -out-dir out/ -resume
//	testsuite sweep status -out-dir out/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cmd/internal/cliutil"
	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "testsuite:", err)
		os.Exit(1)
	}
}

func run() error {
	// The sweep subcommand family has its own flag sets; dispatch before
	// the global flags parse.
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		return runSweep(os.Args[2:])
	}
	var (
		table1  = flag.Bool("table1", false, "reproduce the paper's Table I")
		pixels  = flag.Int("pixels", 4096, "FDCT image size in pixels (Table I uses 4096)")
		words   = flag.Int("words", 64, "Hamming codeword count")
		workDir = flag.String("workdir", "", "write XML/dot/java/hds/mem artifacts here")
		rf      cliutil.RunnerFlags
		ff      cliutil.FlowFlags
		sf      cliutil.ScenarioFlags
	)
	rf.Register(nil)
	ff.Register(nil)
	sf.Register(nil)
	flag.Parse()

	if sf.Active() {
		return sf.Execute(nil, &ff, os.Stdout)
	}

	opts := core.Options{
		WorkDir:       *workDir,
		EmitArtifacts: *workDir != "",
		Backend:       ff.Backend,
		ClockPeriod:   ff.Period,
		MaxCycles:     ff.Cycles,
	}
	suite, err := regressionSuite(*pixels, *words)
	if err != nil {
		return err
	}
	runner := rf.Runner()
	if *table1 {
		return runTable1(suite, runner, *pixels, *words, opts, rf.JSON)
	}
	res := runner.Run(context.Background(), suite, opts)
	if rf.JSON {
		if err := res.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		res.Report(os.Stdout)
	}
	if !res.Passed() {
		return fmt.Errorf("suite failed")
	}
	return nil
}

// regressionSuite derives the suite from the workload registry: every
// family's suite preset, with the historical -pixels/-words flags
// scaling the FDCT and Hamming cases.
func regressionSuite(pixels, words int) (*core.Suite, error) {
	return core.RegistrySuite("compiler-regression", map[string]workloads.Values{
		"fdct1":   {"pixels": pixels},
		"fdct2":   {"pixels": pixels},
		"hamming": {"words": words},
	})
}

// runTable1 regenerates the paper's Table I. The cases run through the
// same parallel runner as the regression suite (so -j/-timeout/-failfast
// apply); the rows print in case order regardless of completion order.
func runTable1(suite *core.Suite, runner *core.Runner, pixels, words int, opts core.Options, asJSON bool) error {
	sres := runner.Run(context.Background(), suite, opts)
	if asJSON {
		if err := sres.WriteJSON(os.Stdout); err != nil {
			return err
		}
		if !sres.Passed() {
			return fmt.Errorf("suite failed")
		}
		return nil
	}
	fmt.Printf("Table I reproduction (image: %d pixels, %d DCT blocks; hamming: %d codewords)\n\n",
		pixels/64*64, pixels/64, words)
	fmt.Printf("%-10s %7s %9s %11s %8s %10s %12s\n",
		"Example", "loJava", "loXML-FSM", "loXML-dpath", "loJavaFSM", "operators", "sim-time")
	for _, res := range sres.Results {
		if res.Err != nil {
			return res.Err
		}
		if !res.Passed {
			return fmt.Errorf("%s: verification FAILED: %v", res.Name, res.Failed())
		}
		for i, p := range res.Partitions {
			label := res.Name
			if len(res.Partitions) > 1 {
				label = fmt.Sprintf("%s/%s", res.Name, p.ID)
			}
			loJava := ""
			if i == 0 {
				loJava = fmt.Sprint(res.SourceLoC)
			}
			fmt.Printf("%-10s %7s %9d %11d %8d %10d %12v\n",
				label, loJava, p.XMLFSMLoC, p.XMLDatapathLoC, p.JavaFSMLoC,
				p.Operators, p.SimWall.Round(time.Millisecond))
		}
	}
	fmt.Printf("\nall cases verified against the golden algorithm in %v (workers: %d)\n",
		sres.Wall.Round(time.Millisecond), sres.Workers)
	return nil
}
