// Command testsuite is the ANT-build analog: one command re-verifies the
// compiler's regression suite by functional simulation against the golden
// algorithm, and optionally regenerates the paper's Table I.
//
// Usage:
//
//	testsuite                 # run the regression suite, one worker per CPU
//	testsuite -j 4            # shard the cases across 4 workers
//	testsuite -json           # one JSON object per case (CI artifacts)
//	testsuite -failfast -timeout 30s
//	testsuite -backend heapref # run the whole suite on the heap kernel
//	testsuite -table1         # reproduce Table I (FDCT1/FDCT2/Hamming)
//	testsuite -pixels 65536   # Table I FDCTs over a larger image
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cmd/internal/cliutil"
	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "testsuite:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table1  = flag.Bool("table1", false, "reproduce the paper's Table I")
		pixels  = flag.Int("pixels", 4096, "FDCT image size in pixels (Table I uses 4096)")
		words   = flag.Int("words", 64, "Hamming codeword count")
		workDir = flag.String("workdir", "", "write XML/dot/java/hds/mem artifacts here")
		rf      cliutil.RunnerFlags
		ff      cliutil.FlowFlags
	)
	rf.Register(nil)
	ff.Register(nil)
	flag.Parse()

	opts := core.Options{
		WorkDir:       *workDir,
		EmitArtifacts: *workDir != "",
		Backend:       ff.Backend,
		ClockPeriod:   ff.Period,
		MaxCycles:     ff.Cycles,
	}
	suite := regressionSuite(*pixels, *words)
	runner := &core.Runner{Workers: rf.Jobs, Timeout: rf.Timeout, FailFast: rf.FailFast}
	if *table1 {
		return runTable1(suite, runner, *pixels, *words, opts, rf.JSON)
	}
	res := runner.Run(context.Background(), suite, opts)
	if rf.JSON {
		if err := res.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		res.Report(os.Stdout)
	}
	if !res.Passed() {
		return fmt.Errorf("suite failed")
	}
	return nil
}

func regressionSuite(pixels, words int) *core.Suite {
	s := &core.Suite{Name: "compiler-regression"}
	add := func(tc core.TestCase) { s.Cases = append(s.Cases, tc) }

	src, sizes, args, inputs := workloads.FDCTCase("fdct1", pixels, false, 42)
	add(core.TestCase{Name: "fdct1", Source: src, Func: "fdct",
		ArraySizes: sizes, ScalarArgs: args, Inputs: inputs})
	src2, sizes2, args2, inputs2 := workloads.FDCTCase("fdct2", pixels, true, 42)
	add(core.TestCase{Name: "fdct2", Source: src2, Func: "fdct",
		ArraySizes: sizes2, ScalarArgs: args2, Inputs: inputs2})
	hs, ha, hi, hx := workloads.HammingCase(words, 9)
	add(core.TestCase{Name: "hamming", Source: workloads.HammingSource, Func: "hamming",
		ArraySizes: hs, ScalarArgs: ha, Inputs: hi,
		Expected: map[string][]int64{"out": hx}})
	return s
}

// runTable1 regenerates the paper's Table I. The cases run through the
// same parallel runner as the regression suite (so -j/-timeout/-failfast
// apply); the rows print in case order regardless of completion order.
func runTable1(suite *core.Suite, runner *core.Runner, pixels, words int, opts core.Options, asJSON bool) error {
	sres := runner.Run(context.Background(), suite, opts)
	if asJSON {
		if err := sres.WriteJSON(os.Stdout); err != nil {
			return err
		}
		if !sres.Passed() {
			return fmt.Errorf("suite failed")
		}
		return nil
	}
	fmt.Printf("Table I reproduction (image: %d pixels, %d DCT blocks; hamming: %d codewords)\n\n",
		pixels/64*64, pixels/64, words)
	fmt.Printf("%-10s %7s %9s %11s %8s %10s %12s\n",
		"Example", "loJava", "loXML-FSM", "loXML-dpath", "loJavaFSM", "operators", "sim-time")
	for _, res := range sres.Results {
		if res.Err != nil {
			return res.Err
		}
		if !res.Passed {
			return fmt.Errorf("%s: verification FAILED: %v", res.Name, res.Failed())
		}
		for i, p := range res.Partitions {
			label := res.Name
			if len(res.Partitions) > 1 {
				label = fmt.Sprintf("%s/%s", res.Name, p.ID)
			}
			loJava := ""
			if i == 0 {
				loJava = fmt.Sprint(res.SourceLoC)
			}
			fmt.Printf("%-10s %7s %9d %11d %8d %10d %12v\n",
				label, loJava, p.XMLFSMLoC, p.XMLDatapathLoC, p.JavaFSMLoC,
				p.Operators, p.SimWall.Round(time.Millisecond))
		}
	}
	fmt.Printf("\nall cases verified against the golden algorithm in %v (workers: %d)\n",
		sres.Wall.Round(time.Millisecond), sres.Workers)
	return nil
}
