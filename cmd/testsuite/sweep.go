package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/simd"
	"repro/internal/sweep"
)

// runSweep dispatches the sweep subcommand family:
//
//	testsuite sweep run -spec campaign.json -shards 8 -shard-workers 4 -out-dir out/
//	testsuite sweep run -scenario spec.json -shards 4 -out campaign.jsonl
//	testsuite sweep run -spec campaign.json -out-dir out/ -resume
//	testsuite sweep run -spec campaign.json -out-dir out/ -subprocess
//	testsuite sweep run -spec campaign.json -out-dir out/ -remote http://a:8080,http://b:8080
//	testsuite sweep run -spec campaign.json -out-dir out/ -progress :8090
//	testsuite sweep worker -spec out/campaign.json -shard 3 -shard-out out/shard-0003.jsonl
//	testsuite sweep status -out-dir out/
//	testsuite sweep status -follow -url http://host:8090
//	testsuite sweep merge -out-dir out/ -out campaign.jsonl
func runSweep(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("sweep: usage: testsuite sweep run|worker|status|merge [flags] (see docs/SWEEP.md)")
	}
	switch args[0] {
	case "run":
		return sweepRun(args[1:])
	case "worker":
		return sweepWorker(args[1:])
	case "status":
		return sweepStatus(args[1:])
	case "merge":
		return sweepMerge(args[1:])
	default:
		return fmt.Errorf("sweep: unknown subcommand %q (want run, worker, status or merge)", args[0])
	}
}

// sweepCampaign loads the campaign named by -spec or -scenario, with
// -shards and -backend applied before the digest is computed so every
// process sharing the spec file agrees on the layout.
func sweepCampaign(specPath, scenarioPath, backend string, shards int) (*sweep.Campaign, error) {
	var spec *api.SweepSpec
	switch {
	case specPath != "" && scenarioPath != "":
		return nil, fmt.Errorf("sweep: -spec and -scenario are mutually exclusive")
	case specPath != "":
		f, err := os.Open(specPath)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		defer f.Close()
		spec, err = api.DecodeSweepSpec(f)
		if err != nil {
			return nil, err
		}
	case scenarioPath != "":
		f, err := os.Open(scenarioPath)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		defer f.Close()
		ss, err := api.DecodeScenarioSpec(f)
		if err != nil {
			return nil, err
		}
		spec = sweep.WrapScenario(ss, 0)
	default:
		return nil, fmt.Errorf("sweep: -spec or -scenario is required")
	}
	if shards > 0 {
		spec.Shards = shards
	}
	if backend != "" {
		spec.Backend = backend
	}
	return sweep.Load(spec, nil)
}

func sweepRun(args []string) error {
	fs := flag.NewFlagSet("sweep run", flag.ContinueOnError)
	var (
		specPath     = fs.String("spec", "", "sweep spec file (scenario or grid campaign)")
		scenarioPath = fs.String("scenario", "", "scenario spec file to run as a campaign")
		shards       = fs.Int("shards", 0, "shard count (overrides the spec; 0 = spec or default)")
		workers      = fs.Int("shard-workers", 1, "concurrent shard workers")
		outDir       = fs.String("out-dir", "", "shard directory (default: a temporary directory)")
		out          = fs.String("out", "", "merged campaign file (default: <out-dir>/campaign.jsonl)")
		resume       = fs.Bool("resume", false, "skip shards already valid in -out-dir, re-run the rest")
		remote       = fs.String("remote", "", "comma-separated simd base URLs to run shards on")
		subprocess   = fs.Bool("subprocess", false, "run each shard in a spawned testsuite worker process")
		retries      = fs.Int("retries", 0, "per-shard retry budget before the shard counts as failed")
		backoff      = fs.Duration("backoff", 100*time.Millisecond, "base backoff between shard retries")
		maxFailures  = fs.Int("max-failures", 1, "failed shards tolerated before aborting the pass")
		backend      = fs.String("backend", "", "simulator backend override for the whole campaign")
		progress     = fs.String("progress", "", "serve live progress on this address (/progressz, /debug/vars)")
		shardTimeout = fs.Duration("shard-timeout", 0, "per-attempt deadline for one shard (0 = none)")
		quiet        = fs.Bool("q", false, "suppress per-shard progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote != "" && *subprocess {
		return fmt.Errorf("sweep: -remote and -subprocess are mutually exclusive")
	}
	c, err := sweepCampaign(*specPath, *scenarioPath, *backend, *shards)
	if err != nil {
		return err
	}
	dir := *outDir
	if dir == "" {
		if *resume {
			return fmt.Errorf("sweep: -resume needs -out-dir (the shard directory to resume)")
		}
		dir, err = os.MkdirTemp("", "sweep-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		if *out == "" {
			// The shard dir is transient; keep the merged campaign.
			*out = c.Spec.Name + ".jsonl"
		}
	}

	opts := sweep.Options{
		Workers:      *workers,
		OutDir:       dir,
		Out:          *out,
		Resume:       *resume,
		Retries:      *retries,
		Backoff:      *backoff,
		MaxFailures:  *maxFailures,
		ShardTimeout: *shardTimeout,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	if *progress != "" {
		tracker, srv, err := serveProgress(*progress)
		if err != nil {
			return err
		}
		defer srv.Close()
		opts.OnProgress = tracker.Update
	}
	switch {
	case *remote != "":
		var clients []*simd.Client
		for _, u := range strings.Split(*remote, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			clients = append(clients, simd.NewClient(u, nil))
		}
		if len(clients) == 0 {
			return fmt.Errorf("sweep: -remote lists no server URLs")
		}
		// Each server is its own endpoint: independently health-tracked,
		// quarantined and hedged against, with -shard-workers concurrent
		// shards apiece.
		fleet := &simd.ShardWorker{Clients: clients}
		opts.Endpoints = fleet.Endpoints(*workers)
	case *subprocess:
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("sweep: locating own binary for -subprocess: %w", err)
		}
		opts.Worker = &sweep.ProcessWorker{
			Argv: func(c *sweep.Campaign, sh sweep.Shard, path string) []string {
				return []string{self, "sweep", "worker",
					"-spec", sweep.SpecPath(dir),
					"-shard", strconv.Itoa(sh.Index),
					"-shard-out", path,
				}
			},
		}
	}

	res, err := sweep.Run(context.Background(), c, opts)
	if res != nil {
		reportSweep(os.Stderr, res)
	}
	if err != nil {
		return err
	}
	fmt.Println(res.Out)
	return nil
}

// sweepWorker executes exactly one shard to a file — the subprocess
// side of -subprocess, and a building block for running shards of one
// campaign by hand across machines. Fault injection from SWEEP_FAULT
// applies here (and only here): the chaos harness kills and truncates
// worker processes, never the coordinator.
func sweepWorker(args []string) error {
	fs := flag.NewFlagSet("sweep worker", flag.ContinueOnError)
	var (
		specPath = fs.String("spec", "", "campaign spec file (the coordinator's <out-dir>/campaign.json)")
		shard    = fs.Int("shard", -1, "shard index to execute")
		shardOut = fs.String("shard-out", "", "shard file to write")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" || *shardOut == "" || *shard < 0 {
		return fmt.Errorf("sweep: worker needs -spec, -shard and -shard-out")
	}
	c, err := sweep.LoadFile(*specPath, nil)
	if err != nil {
		return err
	}
	sh, err := c.ShardAt(*shard)
	if err != nil {
		return err
	}
	inj, err := sweep.FaultsFromEnv()
	if err != nil {
		return err
	}
	if inj != nil {
		inj.Exit = os.Exit
	}
	_, err = sweep.ExecuteShardFile(context.Background(), c, sh, *shardOut, inj)
	return err
}

// serveProgress exposes a live coordinator over HTTP: /progressz
// serves the latest sweep.Progress snapshot as JSON (503 until the
// first one exists) and /debug/vars the process expvars, including
// the "sweep" dispatch counters shared with simd's /statsz world.
func serveProgress(addr string) (*sweep.ProgressTracker, *http.Server, error) {
	tracker := &sweep.ProgressTracker{}
	mux := http.NewServeMux()
	mux.Handle("/progressz", tracker.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: -progress: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "sweep: serving progress on http://%s/progressz\n", ln.Addr())
	return tracker, srv, nil
}

// followProgress polls a coordinator's /progressz until the campaign
// finishes, printing one status line per poll.
func followProgress(base string, interval time.Duration) error {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimRight(base, "/") + "/progressz"
	seen := false
	for {
		resp, err := http.Get(url)
		if err != nil {
			if seen {
				// The coordinator served snapshots and is now gone: the
				// pass ended (its -progress server dies with the process).
				fmt.Println("coordinator exited; pass ended")
				return nil
			}
			return fmt.Errorf("sweep: %w", err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			fmt.Println("waiting for the first snapshot...")
			time.Sleep(interval)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("sweep: %s: HTTP %d", url, resp.StatusCode)
		}
		var p sweep.Progress
		err = json.NewDecoder(resp.Body).Decode(&p)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("sweep: decoding %s: %w", url, err)
		}
		line := fmt.Sprintf("%s: %d/%d shards (%d running, %d pending, %d failed)  cases %d/%d",
			p.Campaign, p.Done, p.Shards, p.Running, p.Pending, p.Failed, p.CasesDone, p.CasesTotal)
		if p.Hedges+p.Steals+p.Requeues+p.Fallbacks > 0 {
			line += fmt.Sprintf("  hedges=%d steals=%d requeues=%d fallbacks=%d",
				p.Hedges, p.Steals, p.Requeues, p.Fallbacks)
		}
		if p.EtaNS > 0 && p.Done+p.Failed < p.Shards {
			line += "  eta=" + time.Duration(p.EtaNS).Round(100*time.Millisecond).String()
		}
		fmt.Println(line)
		seen = true
		if p.Done+p.Failed >= p.Shards {
			return nil
		}
		time.Sleep(interval)
	}
}

// sweepStatus classifies every shard file in -out-dir against the
// campaign spec stored there: valid shards survive a resume, the rest
// re-run. With -follow it instead polls a live coordinator started
// with -progress and streams its view of the pass.
func sweepStatus(args []string) error {
	fs := flag.NewFlagSet("sweep status", flag.ContinueOnError)
	var (
		outDir   = fs.String("out-dir", "", "shard directory to inspect")
		follow   = fs.Bool("follow", false, "poll a live coordinator's /progressz until the pass ends")
		url      = fs.String("url", "", "coordinator progress address for -follow, e.g. http://host:8090")
		interval = fs.Duration("interval", time.Second, "poll interval for -follow")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *follow {
		if *url == "" {
			return fmt.Errorf("sweep: status -follow needs -url (the coordinator's -progress address)")
		}
		return followProgress(*url, *interval)
	}
	if *outDir == "" {
		return fmt.Errorf("sweep: status needs -out-dir")
	}
	c, err := sweep.LoadFile(sweep.SpecPath(*outDir), nil)
	if err != nil {
		return err
	}
	valid := 0
	for _, sh := range c.Shards() {
		info, err := sweep.InspectShard(sweep.ShardPath(*outDir, sh.Index), c.ShardHeader(sh))
		if err != nil {
			return err
		}
		line := fmt.Sprintf("shard %4d  cases [%d,%d)  %s", sh.Index, sh.From, sh.To, info.State)
		if info.State == sweep.StateValid {
			valid++
		} else if info.Reason != "" {
			line += "  (" + info.Reason + ")"
		}
		fmt.Println(line)
	}
	fmt.Printf("%d/%d shards valid (campaign %s, digest %s)\n", valid, c.Spec.Shards, c.Spec.Name, c.Digest)
	return nil
}

// sweepMerge re-validates and merges an out-dir whose shards were all
// produced already — by earlier passes, by hand-run workers, or copied
// from other hosts. Nothing executes; any non-valid shard aborts.
func sweepMerge(args []string) error {
	fs := flag.NewFlagSet("sweep merge", flag.ContinueOnError)
	var (
		outDir = fs.String("out-dir", "", "shard directory to merge")
		out    = fs.String("out", "", "merged campaign file (default: <out-dir>/campaign.jsonl)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir == "" {
		return fmt.Errorf("sweep: merge needs -out-dir")
	}
	c, err := sweep.LoadFile(sweep.SpecPath(*outDir), nil)
	if err != nil {
		return err
	}
	if err := sweep.MergeDir(c, *outDir, *out); err != nil {
		return err
	}
	dst := *out
	if dst == "" {
		dst = sweep.MergedPath(*outDir)
	}
	fmt.Println(dst)
	return nil
}

// reportSweep prints the per-shard outcome table, campaign totals,
// and — when the dispatch layer had to intervene — its counters and
// the health of every endpoint that ended up degraded.
func reportSweep(w io.Writer, res *sweep.Result) {
	for _, st := range res.Shards {
		line := fmt.Sprintf("shard %4d  %-7s  worker=%s attempts=%d", st.Shard, st.State, st.Worker, st.Attempts)
		if st.Endpoint != "" && st.Endpoint != st.Worker {
			line += "  endpoint=" + st.Endpoint
		}
		if st.HedgeWon {
			line += "  hedged"
		}
		if st.Error != "" {
			line += "  error=" + st.Error
		}
		fmt.Fprintln(w, line)
	}
	s := res.Stats
	fmt.Fprintf(w, "sweep %s: %d executed, %d skipped, %d failed, %d retried; %d cases in %v\n",
		s.Campaign, s.Executed, s.Skipped, s.Failed, s.Retried, s.CasesExecuted,
		time.Duration(s.WallNS).Round(time.Millisecond))
	if s.Hedges+s.Steals+s.Requeues+s.Fallbacks > 0 {
		fmt.Fprintf(w, "dispatch: %d hedges (%d won), %d steals, %d requeues, %d fallbacks\n",
			s.Hedges, s.HedgesWon, s.Steals, s.Requeues, s.Fallbacks)
	}
	for _, wh := range s.WorkerHealth {
		if wh.State != "healthy" || wh.Failures > 0 {
			fmt.Fprintf(w, "worker %s: %s (%d ok, %d failed, ewma %v)\n",
				wh.Name, wh.State, wh.Successes, wh.Failures,
				time.Duration(wh.LatencyEWMANS).Round(time.Millisecond))
		}
	}
}
