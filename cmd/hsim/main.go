// Command hsim simulates a compiled design: it loads the rtg.xml bundle
// written by gnc, seeds the shared memories from .mem files, executes
// the reconfiguration flow on the event-driven kernel, and writes the
// resulting memory contents back next to the inputs.
//
// Usage:
//
//	hsim -design build/ -mem img=img.mem -cycles 10000000 -vcd waves
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/cmd/internal/cliutil"
	"repro/internal/hades"
	"repro/internal/memfile"
	"repro/internal/netlist"
	"repro/internal/rtg"
	"repro/internal/xmlspec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		designDir = flag.String("design", "build", "directory holding rtg.xml and companions")
		cycles    = flag.Uint64("cycles", 10_000_000, "cycle cap per configuration")
		period    = flag.Int64("period", 10, "clock period in simulator ticks")
		vcdPrefix = flag.String("vcd", "", "dump VCD waveforms to <prefix>.<cfg>.vcd")
		mems      = cliutil.KVStrings{}
	)
	flag.Var(mems, "mem", "shared memory contents: name=file (repeatable)")
	flag.Parse()

	design, err := xmlspec.LoadDesign(*designDir)
	if err != nil {
		return err
	}
	opts := rtg.Options{ClockPeriod: hades.Time(*period), MaxCycles: *cycles}
	var vcdFiles []*os.File
	defer func() {
		for _, f := range vcdFiles {
			f.Close()
		}
	}()
	if *vcdPrefix != "" {
		opts.Observer = func(cfgID string, el *netlist.Elaboration) {
			path := fmt.Sprintf("%s.%s.vcd", *vcdPrefix, cfgID)
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hsim: vcd:", err)
				return
			}
			vcdFiles = append(vcdFiles, f)
			w := hades.NewVCDWriter(f)
			w.AddAll(el.Sim)
			w.Header(cfgID)
			fmt.Println("vcd:", path)
		}
	}
	ctl, err := rtg.NewController(design, opts)
	if err != nil {
		return err
	}
	for _, m := range design.RTG.Memories {
		path, ok := mems[m.ID]
		if !ok {
			if m.File != "" {
				candidate := filepath.Join(*designDir, m.File)
				if _, err := os.Stat(candidate); err == nil {
					path = candidate
				}
			}
			if path == "" {
				continue // zero-initialised
			}
		}
		words, err := memfile.LoadSized(path, m.Depth)
		if err != nil {
			return err
		}
		if err := ctl.LoadMemory(m.ID, words); err != nil {
			return err
		}
		fmt.Printf("loaded %s from %s (%d words)\n", m.ID, path, m.Depth)
	}

	res, err := ctl.Execute()
	if err != nil {
		return err
	}
	for _, run := range res.Runs {
		fmt.Printf("configuration %-8s cycles=%-8d events=%-10d final=%-6s wall=%v\n",
			run.ID, run.Cycles, run.Events, run.FinalState, run.Wall)
	}
	if !res.Completed {
		return fmt.Errorf("simulation incomplete (cycle cap %d)", *cycles)
	}
	for _, id := range ctl.MemoryIDs() {
		words, err := ctl.Memory(id)
		if err != nil {
			return err
		}
		out := filepath.Join(*designDir, id+".out.mem")
		if err := memfile.Save(out, words, "simulated contents of "+id); err != nil {
			return err
		}
		fmt.Println("wrote", out)
	}
	fmt.Printf("total cycles: %d\n", res.TotalCycles)
	return nil
}
