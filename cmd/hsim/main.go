// Command hsim simulates a compiled design: it loads the rtg.xml bundle
// written by gnc, seeds the shared memories from .mem files, executes
// the reconfiguration flow through the flow pipeline on a selectable
// simulator backend, and writes the resulting memory contents back next
// to the inputs. Per-configuration progress is streamed as it happens.
//
// Usage:
//
//	hsim -design build/ -mem img=img.mem -cycles 10000000 -vcd waves
//	hsim -design build/ -backend heapref
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/cmd/internal/cliutil"
	"repro/internal/flow"
	"repro/internal/memfile"
	"repro/internal/xmlspec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		designDir = flag.String("design", "build", "directory holding rtg.xml and companions")
		vcdPrefix = flag.String("vcd", "", "dump VCD waveforms to <prefix>.<cfg>.vcd")
		mems      = cliutil.KVStrings{}
		ff        cliutil.FlowFlags
	)
	flag.Var(mems, "mem", "shared memory contents: name=file (repeatable)")
	ff.Register(nil)
	flag.Parse()

	design, err := xmlspec.LoadDesign(*designDir)
	if err != nil {
		return err
	}
	opts := append(ff.Options(), flow.WithObserver(flow.NewProgressObserver(os.Stdout)))
	if *vcdPrefix != "" {
		opts = append(opts, flow.WithObserver(flow.NewVCDObserver(*vcdPrefix, os.Stdout)))
	}
	pipe, err := flow.New(opts...)
	if err != nil {
		return err
	}
	el, err := pipe.ElaborateDesign(design)
	if err != nil {
		return err
	}
	for _, m := range design.RTG.Memories {
		path, ok := mems[m.ID]
		if !ok {
			if m.File != "" {
				candidate := filepath.Join(*designDir, m.File)
				if _, err := os.Stat(candidate); err == nil {
					path = candidate
				}
			}
			if path == "" {
				continue // zero-initialised
			}
		}
		words, err := memfile.LoadSized(path, m.Depth)
		if err != nil {
			return err
		}
		if err := el.LoadMemory(m.ID, words); err != nil {
			return err
		}
		fmt.Printf("loaded %s from %s (%d words)\n", m.ID, path, m.Depth)
	}

	res, err := pipe.Simulate(el)
	if err != nil {
		return err
	}
	if !res.Completed {
		return fmt.Errorf("simulation incomplete (cycle cap %d)", ff.Cycles)
	}
	for _, id := range el.MemoryIDs() {
		out := filepath.Join(*designDir, id+".out.mem")
		if err := memfile.Save(out, res.Memories[id], "simulated contents of "+id); err != nil {
			return err
		}
		fmt.Println("wrote", out)
	}
	fmt.Printf("total cycles: %d\n", res.TotalCycles)
	return nil
}
