// Command hsim simulates a compiled design: it loads the rtg.xml bundle
// written by gnc, seeds the shared memories from .mem files, executes
// the reconfiguration flow through the flow pipeline on a selectable
// simulator backend, and writes the resulting memory contents back next
// to the inputs. Per-configuration progress is streamed as it happens.
// Instead of a bundle on disk, -workload compiles a registry workload
// in-process, seeds its generated inputs, and verifies the simulated
// memories against the family's pure-Go reference model.
//
// Usage:
//
//	hsim -design build/ -mem img=img.mem -cycles 10000000 -vcd waves
//	hsim -design build/ -backend heapref
//	hsim -design build/ -repeat 16        # reset-and-replay 16 rounds
//	hsim -workload newton,n=1024 -backend heapref -vcd waves
//
// The scenario engine runs here too (docs/SCENARIOS.md):
//
//	hsim -scenario examples/scenarios/erasure-recover.json -trace run.jsonl
//	hsim -replay run.jsonl -counterfactual backend=compiled
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/cmd/internal/cliutil"
	"repro/internal/flow"
	"repro/internal/memfile"
	"repro/internal/xmlspec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		designDir = flag.String("design", "build", "directory holding rtg.xml and companions (or the output directory with -workload)")
		vcdPrefix = flag.String("vcd", "", "dump VCD waveforms to <prefix>.<cfg>.vcd")
		repeat    = flag.Int("repeat", 1, "simulation rounds; rounds after the first reset-and-replay the prepared design")
		mems      = cliutil.KVStrings{}
		workload  cliutil.WorkloadSpec
		ff        cliutil.FlowFlags
		sf        cliutil.ScenarioFlags
	)
	flag.Var(mems, "mem", "shared memory contents: name=file (repeatable)")
	workload.Register(nil)
	ff.Register(nil)
	sf.Register(nil)
	flag.Parse()

	if sf.Active() {
		return sf.Execute(nil, &ff, os.Stdout)
	}

	opts := append(ff.Options(), flow.WithObserver(flow.NewProgressObserver(os.Stdout)))
	if *vcdPrefix != "" {
		opts = append(opts, flow.WithObserver(flow.NewVCDObserver(*vcdPrefix, os.Stdout)))
	}
	pipe, err := flow.New(opts...)
	if err != nil {
		return err
	}
	if workload.Name != "" {
		if len(mems) > 0 {
			return fmt.Errorf("-workload generates its own memory contents; -mem applies to -design bundles")
		}
		return runWorkload(pipe, workload, *designDir, *repeat)
	}

	design, err := xmlspec.LoadDesign(*designDir)
	if err != nil {
		return err
	}
	pd, err := pipe.PrepareDesign(design)
	if err != nil {
		return err
	}
	for _, m := range design.RTG.Memories {
		path, ok := mems[m.ID]
		if !ok {
			if m.File != "" {
				candidate := filepath.Join(*designDir, m.File)
				if _, err := os.Stat(candidate); err == nil {
					path = candidate
				}
			}
			if path == "" {
				continue // zero-initialised
			}
		}
		words, err := memfile.LoadSized(path, m.Depth)
		if err != nil {
			return err
		}
		if err := pd.SetSeed(m.ID, words); err != nil {
			return err
		}
		fmt.Printf("loaded %s from %s (%d words)\n", m.ID, path, m.Depth)
	}

	res, err := replayRounds(pd, *repeat)
	if err != nil {
		return err
	}
	if !res.Completed {
		return fmt.Errorf("simulation incomplete (cycle cap %d)", ff.Cycles)
	}
	for _, id := range pd.Elaborated().MemoryIDs() {
		out := filepath.Join(*designDir, id+".out.mem")
		if err := memfile.Save(out, res.Memories[id], "simulated contents of "+id); err != nil {
			return err
		}
		fmt.Println("wrote", out)
	}
	fmt.Printf("total cycles: %d\n", res.TotalCycles)
	return nil
}

// replayRounds simulates the prepared design repeat times (reseeding
// each round) and returns the final round's result, reporting the
// amortized reconfiguration throughput when more than one round ran.
func replayRounds(pd *flow.PreparedDesign, repeat int) (*flow.SimResult, error) {
	if repeat < 1 {
		repeat = 1
	}
	start := time.Now()
	var res *flow.SimResult
	configs := 0
	for i := 0; i < repeat; i++ {
		var err error
		res, err = pd.Simulate()
		if err != nil {
			return nil, err
		}
		configs += len(res.Runs)
	}
	if repeat > 1 {
		wall := time.Since(start)
		fmt.Printf("replayed %d rounds (%d configurations) in %v: %.1f configs/sec\n",
			repeat, configs, wall.Round(time.Millisecond), float64(configs)/wall.Seconds())
	}
	return res, nil
}

// runWorkload drives the full staged pipeline for a registry workload:
// compile the emitted MiniJ, prepare (elaborate + seed the generated
// inputs) once, simulate repeat rounds through the replay cache, verify
// the final round against the family's reference model, and dump the
// simulated memories under outDir.
func runWorkload(pipe *flow.Pipeline, spec cliutil.WorkloadSpec, outDir string, repeat int) error {
	c, err := spec.Case()
	if err != nil {
		return err
	}
	pd, err := pipe.Prepare(flow.Source{
		Name: c.Name, Text: c.Source, Func: c.Func,
		ArraySizes: c.ArraySizes, ScalarArgs: c.ScalarArgs,
		Inputs: c.Inputs, Expected: c.Expected,
	})
	if err != nil {
		return err
	}
	res, err := replayRounds(pd, repeat)
	if err != nil {
		return err
	}
	if !res.Completed {
		return fmt.Errorf("simulation incomplete (cycle cap %d)", pipe.Config().MaxCycles)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for _, id := range pd.Elaborated().MemoryIDs() {
		out := filepath.Join(outDir, id+".out.mem")
		if err := memfile.Save(out, res.Memories[id], "simulated contents of "+id); err != nil {
			return err
		}
		fmt.Println("wrote", out)
	}
	fmt.Printf("total cycles: %d\n", res.TotalCycles)
	verdict, err := pipe.Verify(pd.Compiled(), res)
	if err != nil {
		return err
	}
	if !verdict.Passed {
		return fmt.Errorf("workload %s: simulated memories diverge from the reference model: %v",
			spec.Name, verdict.Failed())
	}
	fmt.Printf("verified against the %s reference model\n", spec.Name)
	return nil
}
