package cliutil

import (
	"flag"
	"runtime"
	"testing"
	"time"
)

func TestRunnerFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var rf RunnerFlags
	rf.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if rf.Jobs != runtime.GOMAXPROCS(0) {
		t.Fatalf("Jobs=%d, want GOMAXPROCS", rf.Jobs)
	}
	if rf.Timeout != 0 || rf.FailFast || rf.JSON {
		t.Fatalf("rf=%+v", rf)
	}
}

func TestRunnerFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var rf RunnerFlags
	rf.Register(fs)
	if err := fs.Parse([]string{"-j", "4", "-timeout", "30s", "-failfast", "-json"}); err != nil {
		t.Fatal(err)
	}
	if rf.Jobs != 4 || rf.Timeout != 30*time.Second || !rf.FailFast || !rf.JSON {
		t.Fatalf("rf=%+v", rf)
	}
}

func TestKVInts(t *testing.T) {
	m := KVInts{}
	if err := m.Set("a=4"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b=16"); err != nil {
		t.Fatal(err)
	}
	if m["a"] != 4 || m["b"] != 16 {
		t.Fatalf("m=%v", m)
	}
	for _, bad := range []string{"a", "a=x", "=", ""} {
		if err := m.Set(bad); err == nil {
			t.Errorf("Set(%q) must fail", bad)
		}
	}
	if m.String() == "" {
		t.Error("String must render")
	}
}

func TestKVInt64s(t *testing.T) {
	m := KVInt64s{}
	if err := m.Set("n=-9"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("h=0x10"); err != nil {
		t.Fatal(err)
	}
	if m["n"] != -9 || m["h"] != 16 {
		t.Fatalf("m=%v", m)
	}
	if err := m.Set("bad"); err == nil {
		t.Error("missing = must fail")
	}
}

func TestKVStrings(t *testing.T) {
	m := KVStrings{}
	if err := m.Set("img=path/to.mem"); err != nil {
		t.Fatal(err)
	}
	if m["img"] != "path/to.mem" {
		t.Fatalf("m=%v", m)
	}
	if err := m.Set("noval"); err == nil {
		t.Error("missing = must fail")
	}
}
