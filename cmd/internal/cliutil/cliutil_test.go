package cliutil

import (
	"flag"
	"runtime"
	"testing"
	"time"

	"repro/internal/flow"
)

func TestRunnerFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var rf RunnerFlags
	rf.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if rf.Jobs != runtime.GOMAXPROCS(0) {
		t.Fatalf("Jobs=%d, want GOMAXPROCS", rf.Jobs)
	}
	if rf.Timeout != 0 || rf.FailFast || rf.JSON {
		t.Fatalf("rf=%+v", rf)
	}
}

func TestRunnerFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var rf RunnerFlags
	rf.Register(fs)
	if err := fs.Parse([]string{"-j", "4", "-timeout", "30s", "-failfast", "-json"}); err != nil {
		t.Fatal(err)
	}
	if rf.Jobs != 4 || rf.Timeout != 30*time.Second || !rf.FailFast || !rf.JSON {
		t.Fatalf("rf=%+v", rf)
	}
}

func TestKVInts(t *testing.T) {
	m := KVInts{}
	if err := m.Set("a=4"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b=16"); err != nil {
		t.Fatal(err)
	}
	if m["a"] != 4 || m["b"] != 16 {
		t.Fatalf("m=%v", m)
	}
	for _, bad := range []string{"a", "a=x", "=", ""} {
		if err := m.Set(bad); err == nil {
			t.Errorf("Set(%q) must fail", bad)
		}
	}
	if m.String() == "" {
		t.Error("String must render")
	}
}

func TestKVInt64s(t *testing.T) {
	m := KVInt64s{}
	if err := m.Set("n=-9"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("h=0x10"); err != nil {
		t.Fatal(err)
	}
	if m["n"] != -9 || m["h"] != 16 {
		t.Fatalf("m=%v", m)
	}
	if err := m.Set("bad"); err == nil {
		t.Error("missing = must fail")
	}
}

func TestKVStrings(t *testing.T) {
	m := KVStrings{}
	if err := m.Set("img=path/to.mem"); err != nil {
		t.Fatal(err)
	}
	if m["img"] != "path/to.mem" {
		t.Fatalf("m=%v", m)
	}
	if err := m.Set("noval"); err == nil {
		t.Error("missing = must fail")
	}
}

func TestFlowFlagsDefaultsAreTheFlowDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var ff FlowFlags
	ff.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if ff.Backend != flow.DefaultBackend {
		t.Errorf("Backend=%q want %q", ff.Backend, flow.DefaultBackend)
	}
	if ff.Period != int64(flow.DefaultClockPeriod) {
		t.Errorf("Period=%d want %d", ff.Period, flow.DefaultClockPeriod)
	}
	if ff.Cycles != flow.DefaultMaxCycles {
		t.Errorf("Cycles=%d want %d", ff.Cycles, flow.DefaultMaxCycles)
	}
	// The rendered options resolve to exactly the flags' values.
	p, err := flow.New(ff.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if cfg.ClockPeriod != flow.DefaultClockPeriod || cfg.MaxCycles != flow.DefaultMaxCycles ||
		cfg.Backend != flow.DefaultBackend {
		t.Fatalf("resolved config %+v diverges from flow defaults", cfg)
	}
}

func TestFlowFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var ff FlowFlags
	ff.Register(fs)
	if err := fs.Parse([]string{"-backend", "heapref", "-period", "4", "-cycles", "99"}); err != nil {
		t.Fatal(err)
	}
	p, err := flow.New(ff.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if cfg.Backend != "heapref" || cfg.ClockPeriod != 4 || cfg.MaxCycles != 99 {
		t.Fatalf("cfg=%+v", cfg)
	}
	if _, err := flow.New(flow.WithBackend("bogus")); err == nil {
		t.Fatal("bogus backend must fail pipeline construction")
	}
}

func TestWorkloadSpecParse(t *testing.T) {
	var s WorkloadSpec
	if err := s.Set("fir,n=1024,taps=16"); err != nil {
		t.Fatal(err)
	}
	if s.Name != "fir" || s.Values["n"] != 1024 || s.Values["taps"] != 16 {
		t.Fatalf("s=%+v", s)
	}
	if got := s.String(); got != "fir,n=1024,taps=16" {
		t.Fatalf("String() = %q", got)
	}
	c, err := s.Case()
	if err != nil {
		t.Fatal(err)
	}
	if c.Workload != "fir" || c.ArraySizes["y"] != 1024 || len(c.Expected["y"]) != 1024 {
		t.Fatalf("case %+v", c)
	}

	// Bare name: defaults resolve at Build time.
	s = WorkloadSpec{}
	if err := s.Set("hamming"); err != nil {
		t.Fatal(err)
	}
	if s.String() != "hamming" || len(s.Values) != 0 {
		t.Fatalf("s=%+v", s)
	}
	if _, err := s.Case(); err != nil {
		t.Fatal(err)
	}

	// Registry errors surface through Case with self-describing messages.
	s = WorkloadSpec{}
	if err := s.Set("nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Case(); err == nil {
		t.Fatal("unknown workload must fail Case()")
	}
	s = WorkloadSpec{}
	if err := s.Set("matmul,n=9999"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Case(); err == nil {
		t.Fatal("out-of-range parameter must fail Case()")
	}
}

func TestWorkloadSpecMalformed(t *testing.T) {
	for _, bad := range []string{"", ",n=4", "n=4", "fir,=4", "fir,n", "fir,n=", "fir,n=zz", "fir,n=4x"} {
		var s WorkloadSpec
		if err := s.Set(bad); err == nil {
			t.Errorf("Set(%q) must fail", bad)
		}
	}
	// A trailing comma is tolerated (shell editing artifact).
	var s WorkloadSpec
	if err := s.Set("fir,"); err != nil {
		t.Fatal(err)
	}
	if s.Name != "fir" || len(s.Values) != 0 {
		t.Fatalf("s=%+v", s)
	}
}

func TestKVMalformedInputs(t *testing.T) {
	for _, bad := range []string{"", "=", "=5", "noequals", "a=", "a=notanum", "a=99999999999999999999"} {
		if err := (KVInts{}).Set(bad); err == nil {
			t.Errorf("KVInts.Set(%q) must fail", bad)
		}
	}
	for _, bad := range []string{"", "=", "=5", "noequals", "a=", "a=zz", "a=99999999999999999999"} {
		if err := (KVInt64s{}).Set(bad); err == nil {
			t.Errorf("KVInt64s.Set(%q) must fail", bad)
		}
	}
	for _, bad := range []string{"", "=x", "noequals"} {
		if err := (KVStrings{}).Set(bad); err == nil {
			t.Errorf("KVStrings.Set(%q) must fail", bad)
		}
	}
	// Values may legitimately contain '=' after the first split.
	m := KVStrings{}
	if err := m.Set("k=a=b"); err != nil || m["k"] != "a=b" {
		t.Fatalf("m=%v err=%v", m, err)
	}
}
