// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"flag"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// RunnerFlags bundles the suite-execution flags shared by the tools that
// run regression cases (testsuite, gnc -verify): worker count, per-case
// timeout, fail-fast, and machine-readable output.
type RunnerFlags struct {
	Jobs     int
	Timeout  time.Duration
	FailFast bool
	JSON     bool
}

// Register installs the flags on fs (the default flag.CommandLine when
// fs is nil).
func (f *RunnerFlags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.IntVar(&f.Jobs, "j", runtime.GOMAXPROCS(0), "parallel suite workers (<=0: one per CPU)")
	fs.DurationVar(&f.Timeout, "timeout", 0, "per-case timeout; a case exceeding it fails (0 = none)")
	fs.BoolVar(&f.FailFast, "failfast", false, "cancel pending cases after the first failure")
	fs.BoolVar(&f.JSON, "json", false, "emit one JSON object per case instead of the text report")
}

// KVInts collects repeated -flag name=int values.
type KVInts map[string]int

// String renders the current value.
func (m KVInts) String() string { return fmt.Sprint(map[string]int(m)) }

// Set parses one name=int pair.
func (m KVInts) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	v, err := strconv.Atoi(val)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	m[name] = v
	return nil
}

// KVInt64s collects repeated -flag name=int64 values.
type KVInt64s map[string]int64

// String renders the current value.
func (m KVInt64s) String() string { return fmt.Sprint(map[string]int64(m)) }

// Set parses one name=int64 pair.
func (m KVInt64s) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	v, err := strconv.ParseInt(val, 0, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	m[name] = v
	return nil
}

// KVStrings collects repeated -flag name=string values.
type KVStrings map[string]string

// String renders the current value.
func (m KVStrings) String() string { return fmt.Sprint(map[string]string(m)) }

// Set parses one name=string pair.
func (m KVStrings) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	m[name] = val
	return nil
}
