// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"flag"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/hades"
	"repro/internal/workloads"
)

// FlowFlags bundles the pipeline flags shared by the tools that
// simulate designs (hsim, gnc, testsuite): simulator backend, clock
// period and cycle cap. The flag defaults are the flow defaults — the
// single source of truth — so every tool observes the same values.
type FlowFlags struct {
	Backend string
	Period  int64
	Cycles  uint64
}

// Register installs the flags on fs (the default flag.CommandLine when
// fs is nil).
func (f *FlowFlags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.Backend, "backend", flow.DefaultBackend,
		"simulator backend: "+BackendUsage())
	fs.Int64Var(&f.Period, "period", int64(flow.DefaultClockPeriod),
		"clock period in simulator ticks")
	fs.Uint64Var(&f.Cycles, "cycles", flow.DefaultMaxCycles,
		"cycle cap per configuration")
}

// BackendUsage renders the backend registry as a flag-help catalog:
// one "name (kind): description" entry per registered backend, in
// Backends() order (default first). Shared by every -backend flag so
// the tools describe the same registry the same way.
func BackendUsage() string {
	infos := flow.Backends()
	parts := make([]string, len(infos))
	for i, bi := range infos {
		parts[i] = fmt.Sprintf("%s (%s): %s", bi.Name, bi.Kind, bi.Desc)
	}
	return strings.Join(parts, "; ")
}

// Options renders the parsed flags as flow options.
func (f *FlowFlags) Options() []flow.Option {
	return []flow.Option{
		flow.WithBackend(f.Backend),
		flow.WithClock(hades.Time(f.Period)),
		flow.WithMaxCycles(f.Cycles),
	}
}

// RunnerFlags bundles the suite-execution flags shared by the tools that
// run regression cases (testsuite, gnc -verify): worker count, per-case
// timeout, fail-fast, verify-sweep repetitions, and machine-readable
// output.
type RunnerFlags struct {
	Jobs     int
	Timeout  time.Duration
	FailFast bool
	Repeat   int
	JSON     bool
}

// Register installs the flags on fs (the default flag.CommandLine when
// fs is nil).
func (f *RunnerFlags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.IntVar(&f.Jobs, "j", runtime.GOMAXPROCS(0), "parallel suite workers (<=0: one per CPU)")
	fs.DurationVar(&f.Timeout, "timeout", 0, "per-case timeout; a case exceeding it fails (0 = none)")
	fs.BoolVar(&f.FailFast, "failfast", false, "cancel pending cases after the first failure")
	fs.IntVar(&f.Repeat, "repeat", 1, "simulate-and-verify rounds per case; rounds after the first reset-and-replay the prepared design")
	fs.BoolVar(&f.JSON, "json", false, "emit one JSON object per case instead of the text report")
}

// Runner renders the parsed flags as a configured suite runner.
func (f *RunnerFlags) Runner() *core.Runner {
	return &core.Runner{Workers: f.Jobs, Timeout: f.Timeout, FailFast: f.FailFast, Repeat: f.Repeat}
}

// WorkloadSpec is the parsed value of the -workload flag shared by the
// tools that materialize registry workloads (gnc, hsim):
// "name[,param=value...]", e.g. "fir,n=1024,taps=16". The zero value
// means no workload was selected (Name empty).
type WorkloadSpec struct {
	Name   string
	Values workloads.Values
}

// Register installs the flag on fs (the default flag.CommandLine when
// fs is nil).
func (s *WorkloadSpec) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.Var(s, "workload",
		"registry workload to materialize: name[,param=value...] (names: "+
			strings.Join(workloads.Names(), ", ")+")")
}

// String renders the current value in the flag's own syntax.
func (s *WorkloadSpec) String() string {
	if s == nil || s.Name == "" {
		return ""
	}
	if len(s.Values) == 0 {
		return s.Name
	}
	return s.Name + "," + s.Values.String()
}

// Set parses one name[,param=value...] spec (the syntax lives in
// workloads.ParseSpec, shared with the simd server's request decoding).
func (s *WorkloadSpec) Set(arg string) error {
	name, vals, err := workloads.ParseSpec(arg)
	if err != nil {
		return err
	}
	s.Name = name
	s.Values = vals
	return nil
}

// Case materializes the selected workload through the registry —
// unknown names and invalid parameters surface here, with the
// registry's self-describing errors.
func (s *WorkloadSpec) Case() (*workloads.Case, error) {
	return workloads.Build(s.Name, s.Values)
}

// CaseInputs is Case without running the reference model — for
// compile-only paths that never verify.
func (s *WorkloadSpec) CaseInputs() (*workloads.Case, error) {
	w, err := workloads.Lookup(s.Name)
	if err != nil {
		return nil, err
	}
	return workloads.BuildWorkloadInputs(w, s.Values)
}

// KVInts collects repeated -flag name=int values.
type KVInts map[string]int

// String renders the current value.
func (m KVInts) String() string { return fmt.Sprint(map[string]int(m)) }

// Set parses one name=int pair.
func (m KVInts) Set(s string) error {
	name, val, err := splitKV(s)
	if err != nil {
		return err
	}
	v, err := strconv.Atoi(val)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	m[name] = v
	return nil
}

// KVInt64s collects repeated -flag name=int64 values.
type KVInt64s map[string]int64

// String renders the current value.
func (m KVInt64s) String() string { return fmt.Sprint(map[string]int64(m)) }

// Set parses one name=int64 pair.
func (m KVInt64s) Set(s string) error {
	name, val, err := splitKV(s)
	if err != nil {
		return err
	}
	v, err := strconv.ParseInt(val, 0, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	m[name] = v
	return nil
}

// KVStrings collects repeated -flag name=string values.
type KVStrings map[string]string

// String renders the current value.
func (m KVStrings) String() string { return fmt.Sprint(map[string]string(m)) }

// Set parses one name=string pair.
func (m KVStrings) Set(s string) error {
	name, val, err := splitKV(s)
	if err != nil {
		return err
	}
	m[name] = val
	return nil
}

// splitKV parses one name=value pair, rejecting empty names.
func splitKV(s string) (name, val string, err error) {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return "", "", fmt.Errorf("expected name=value, got %q", s)
	}
	if name == "" {
		return "", "", fmt.Errorf("empty name in %q", s)
	}
	return name, val, nil
}
