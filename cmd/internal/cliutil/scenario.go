package cliutil

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/flow"
	"repro/internal/hades"
	"repro/internal/scenario"
)

// ScenarioFlags bundles the scenario-engine flags shared by the tools
// that run campaigns (testsuite, hsim): run a declarative spec, record
// its trace, replay a recorded trace, or re-run it counterfactually
// with one dimension substituted.
type ScenarioFlags struct {
	Scenario       string // -scenario: spec file to run
	Trace          string // -trace: record the run's JSONL trace here
	Replay         string // -replay: trace file to re-execute
	Counterfactual string // -counterfactual: dimension to substitute
}

// Register installs the flags on fs (the default flag.CommandLine when
// fs is nil).
func (f *ScenarioFlags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.Scenario, "scenario", "",
		"run a declarative scenario spec file (see docs/SCENARIOS.md and examples/scenarios/)")
	fs.StringVar(&f.Trace, "trace", "",
		"record the scenario or replay run as a JSONL trace file")
	fs.StringVar(&f.Replay, "replay", "",
		"re-execute a recorded trace file and require it bit-identical")
	fs.StringVar(&f.Counterfactual, "counterfactual", "",
		"with -replay: substitute one dimension (backend=<name>, width=<n>, faults=off) and report the paired diff")
}

// Active reports whether a scenario-engine mode was selected.
func (f *ScenarioFlags) Active() bool { return f.Scenario != "" || f.Replay != "" }

// ParseSubstitution parses a -counterfactual value.
func ParseSubstitution(s string) (scenario.Substitution, error) {
	var sub scenario.Substitution
	key, val, _ := strings.Cut(s, "=")
	switch key {
	case "backend":
		if val == "" {
			return sub, fmt.Errorf("counterfactual backend needs a name (have: %s)", strings.Join(flow.BackendNames(), ", "))
		}
		sub.Backend = val
	case "width":
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return sub, fmt.Errorf("counterfactual width needs a positive integer, got %q", val)
		}
		sub.Width = n
	case "faults":
		if val != "off" {
			return sub, fmt.Errorf("counterfactual faults supports only faults=off, got %q", s)
		}
		sub.FaultsOff = true
	default:
		return sub, fmt.Errorf("unknown counterfactual dimension %q (have: backend=<name>, width=<n>, faults=off)", s)
	}
	return sub, nil
}

// FlagWasSet reports whether a flag was explicitly set on the command
// line (fs nil means the default flag.CommandLine). Used to distinguish
// "the user chose this backend" from the registered default, so a
// scenario spec's own backend wins unless overridden.
func FlagWasSet(fs *flag.FlagSet, name string) bool {
	if fs == nil {
		fs = flag.CommandLine
	}
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// Execute runs the selected scenario-engine mode — spec run, replay, or
// counterfactual — under the shared flow flags, writing the report to
// out. The -backend flag overrides the spec's (or trace's) backend only
// when explicitly set. A failing campaign, a diverging replay, or a
// backend-substituted counterfactual that changes any verdict returns
// an error.
func (f *ScenarioFlags) Execute(fs *flag.FlagSet, ff *FlowFlags, out io.Writer) error {
	if f.Scenario != "" && f.Replay != "" {
		return fmt.Errorf("-scenario and -replay are mutually exclusive")
	}
	if f.Counterfactual != "" && f.Replay == "" {
		return fmt.Errorf("-counterfactual requires -replay <trace>")
	}
	opts := scenario.Options{
		Flow: []flow.Option{
			flow.WithClock(hades.Time(ff.Period)),
			flow.WithMaxCycles(ff.Cycles),
		},
	}
	if FlagWasSet(fs, "backend") {
		opts.Backend = ff.Backend
	}
	ctx := context.Background()

	var trace io.Writer
	if f.Trace != "" {
		tf, err := os.Create(f.Trace)
		if err != nil {
			return err
		}
		defer tf.Close()
		trace = tf
	}

	if f.Scenario != "" {
		sc, err := scenario.LoadFile(f.Scenario, nil)
		if err != nil {
			return err
		}
		res, err := sc.Run(ctx, opts, trace)
		if res != nil {
			res.Report(out)
		}
		if err != nil {
			return err
		}
		if !res.OK() {
			return fmt.Errorf("scenario %q failed (%d/%d passed, %d policy violations)",
				res.Header.Scenario, res.Summary.Passed, res.Summary.Cases, res.Summary.PolicyViolations)
		}
		return nil
	}

	tr, err := scenario.ReadTraceFile(f.Replay)
	if err != nil {
		return err
	}
	if f.Counterfactual != "" {
		sub, err := ParseSubstitution(f.Counterfactual)
		if err != nil {
			return err
		}
		cf, err := scenario.Counterfactual(ctx, tr, opts, sub, trace)
		if err != nil {
			return err
		}
		cf.Report(out)
		if cf.Variant.Summary.Error != "" {
			return fmt.Errorf("counterfactual run errored: %s", cf.Variant.Summary.Error)
		}
		// A backend swap must preserve everything; the other dimensions
		// are exploratory and report rather than fail.
		if sub.Backend != "" && (!cf.VerdictsSame || !cf.OutcomesSame || !cf.MemoriesSame) {
			return fmt.Errorf("counterfactual backend swap changed outcomes (the backends are pinned equivalent; this is a bug)")
		}
		return nil
	}

	res, err := scenario.Replay(ctx, tr, opts, trace)
	if res != nil {
		res.Report(out)
	}
	if err != nil {
		return err
	}
	strict := opts.Backend == "" || opts.Backend == tr.Header.Backend
	if diffs := scenario.CompareTraces(tr.Cases, res.Cases, strict); len(diffs) != 0 {
		for _, d := range diffs {
			fmt.Fprintln(out, "  diff:", d)
		}
		return fmt.Errorf("replay diverged from the recorded trace in %d places", len(diffs))
	}
	fmt.Fprintf(out, "replay matches the recorded trace (%d cases, backend %s)\n",
		len(res.Cases), res.Header.Backend)
	return nil
}
