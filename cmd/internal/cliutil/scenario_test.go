package cliutil

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func TestParseSubstitution(t *testing.T) {
	sub, err := ParseSubstitution("backend=compiled")
	if err != nil || sub.Backend != "compiled" {
		t.Fatalf("backend: %+v, %v", sub, err)
	}
	sub, err = ParseSubstitution("width=16")
	if err != nil || sub.Width != 16 {
		t.Fatalf("width: %+v, %v", sub, err)
	}
	sub, err = ParseSubstitution("faults=off")
	if err != nil || !sub.FaultsOff {
		t.Fatalf("faults: %+v, %v", sub, err)
	}
	for _, bad := range []string{"", "backend=", "width=x", "width=-2", "faults=on", "seed=9"} {
		if _, err := ParseSubstitution(bad); err == nil {
			t.Errorf("%q: expected error", bad)
		}
	}
}

// writeExampleSpec materializes an embedded spec into a temp dir.
func writeExampleSpec(t *testing.T, name string) string {
	t.Helper()
	b, ok := scenario.ExampleSpec(name)
	if !ok {
		t.Fatalf("no embedded spec %s", name)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func newScenarioFlagSet(t *testing.T, args ...string) (*ScenarioFlags, *FlowFlags, *flag.FlagSet) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var sf ScenarioFlags
	var ff FlowFlags
	sf.Register(fs)
	ff.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &sf, &ff, fs
}

// The full CLI loop: run a spec with -trace, replay the trace, then a
// counterfactual backend swap — all through the shared Execute path the
// testsuite and hsim commands call.
func TestScenarioFlagsRunReplayCounterfactual(t *testing.T) {
	spec := writeExampleSpec(t, "erasure-fail.json")
	tracePath := filepath.Join(t.TempDir(), "run.jsonl")

	sf, ff, fs := newScenarioFlagSet(t, "-scenario", spec, "-trace", tracePath)
	var out bytes.Buffer
	if err := sf.Execute(fs, ff, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok=true") {
		t.Fatalf("run report:\n%s", out.String())
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatalf("trace not written: %v", err)
	}

	sf, ff, fs = newScenarioFlagSet(t, "-replay", tracePath)
	out.Reset()
	if err := sf.Execute(fs, ff, &out); err != nil {
		t.Fatalf("replay: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replay matches the recorded trace") {
		t.Fatalf("replay report:\n%s", out.String())
	}

	sf, ff, fs = newScenarioFlagSet(t, "-replay", tracePath, "-counterfactual", "backend=compiled")
	out.Reset()
	if err := sf.Execute(fs, ff, &out); err != nil {
		t.Fatalf("counterfactual: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verdicts-same true") {
		t.Fatalf("counterfactual report:\n%s", out.String())
	}
}

func TestScenarioFlagsExplicitBackendWins(t *testing.T) {
	spec := writeExampleSpec(t, "erasure-fail.json")
	tracePath := filepath.Join(t.TempDir(), "run.jsonl")
	sf, ff, fs := newScenarioFlagSet(t, "-scenario", spec, "-trace", tracePath, "-backend", "compiled")
	var out bytes.Buffer
	if err := sf.Execute(fs, ff, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	tr, err := scenario.ReadTraceFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Backend != "compiled" {
		t.Fatalf("explicit -backend ignored: trace ran on %q", tr.Header.Backend)
	}
}

func TestScenarioFlagsRejectsBadCombos(t *testing.T) {
	var out bytes.Buffer
	sf, ff, fs := newScenarioFlagSet(t, "-scenario", "a.json", "-replay", "b.jsonl")
	if err := sf.Execute(fs, ff, &out); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("scenario+replay: %v", err)
	}
	sf, ff, fs = newScenarioFlagSet(t, "-counterfactual", "faults=off")
	if sf.Active() {
		t.Fatal("counterfactual alone must not activate the engine")
	}
	sf, ff, fs = newScenarioFlagSet(t, "-replay", "b.jsonl", "-counterfactual", "nope=1")
	if err := sf.Execute(fs, ff, &out); err == nil {
		t.Fatal("bad counterfactual must error")
	}
}
