// Command vcddiff compares two VCD waveform dumps (e.g. from hsim -vcd
// runs before and after a compiler change) and reports diverging signal
// activity — waveforms as regression artifacts.
//
// Usage:
//
//	vcddiff golden.cfg1.vcd current.cfg1.vcd
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/vcd"
)

func main() {
	max := flag.Int("max", 20, "maximum differences to report (0 = all)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: vcddiff [-max N] <a.vcd> <b.vcd>")
		os.Exit(2)
	}
	a, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcddiff:", err)
		os.Exit(1)
	}
	b, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcddiff:", err)
		os.Exit(1)
	}
	diffs := vcd.Compare(a, b, *max)
	if len(diffs) == 0 {
		fmt.Printf("identical signal activity (%d signals, up to t=%d)\n", len(a.Names()), a.End)
		return
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	fmt.Printf("%d difference(s)\n", len(diffs))
	os.Exit(1)
}

func load(path string) (*vcd.Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return vcd.Parse(f)
}
