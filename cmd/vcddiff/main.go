// Command vcddiff compares two VCD waveform dumps (e.g. from hsim -vcd
// runs before and after a compiler change) and reports diverging signal
// activity — waveforms as regression artifacts.
//
// Usage:
//
//	vcddiff golden.cfg1.vcd current.cfg1.vcd
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/vcd"
)

func main() {
	diffs, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // usage already printed, clean exit
		}
		fmt.Fprintln(os.Stderr, "vcddiff:", err)
		os.Exit(2)
	}
	if diffs > 0 {
		os.Exit(1)
	}
}

// run compares the two dumps named by args and reports the number of
// differences printed.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("vcddiff", flag.ContinueOnError)
	max := fs.Int("max", 20, "maximum differences to report (0 = all)")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() != 2 {
		return 0, fmt.Errorf("usage: vcddiff [-max N] <a.vcd> <b.vcd>")
	}
	a, err := load(fs.Arg(0))
	if err != nil {
		return 0, err
	}
	b, err := load(fs.Arg(1))
	if err != nil {
		return 0, err
	}
	diffs := vcd.Compare(a, b, *max)
	if len(diffs) == 0 {
		fmt.Fprintf(out, "identical signal activity (%d signals, up to t=%d)\n", len(a.Names()), a.End)
		return 0, nil
	}
	for _, d := range diffs {
		fmt.Fprintln(out, d)
	}
	fmt.Fprintf(out, "%d difference(s)\n", len(diffs))
	return len(diffs), nil
}

func load(path string) (*vcd.Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return vcd.Parse(f)
}
