package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/hades"
	"repro/internal/netlist"
	"repro/internal/xmlspec"
)

// dumpHandcrafted simulates the examples/handcrafted accumulator with
// the given stimulus and dumps every signal to a VCD file, exactly as
// the example and hsim -vcd do.
func dumpHandcrafted(t *testing.T, path string, stimulus []int64) {
	t.Helper()
	dp := &xmlspec.Datapath{
		Name:  "acc",
		Width: 32,
		Operators: []xmlspec.Operator{
			{ID: "src", Type: "stim"},
			{ID: "r_acc", Type: "reg"},
			{ID: "add0", Type: "add"},
			{ID: "cap", Type: "sink"},
		},
		Connections: []xmlspec.Connection{
			{From: "r_acc.q", To: "add0.a"},
			{From: "src.out", To: "add0.b"},
			{From: "add0.y", To: "r_acc.d"},
			{From: "r_acc.q", To: "cap.in"},
		},
		Controls: []xmlspec.Control{
			{Name: "en_acc", Targets: []xmlspec.ControlTo{{Port: "r_acc.en"}}},
			{Name: "en_cap", Targets: []xmlspec.ControlTo{{Port: "cap.en"}}},
		},
		Statuses: []xmlspec.Status{{Name: "last", From: "src.last"}},
	}
	fsm := &xmlspec.FSM{
		Name:    "acc_ctl",
		Inputs:  []xmlspec.FSMSignal{{Name: "last"}},
		Outputs: []xmlspec.FSMSignal{{Name: "en_acc"}, {Name: "en_cap"}, {Name: "done"}},
		States: []xmlspec.State{
			{
				Name: "RUN", Initial: true,
				Assigns: []xmlspec.Assign{
					{Signal: "en_acc", Value: 1},
					{Signal: "en_cap", Value: 1},
				},
				Transitions: []xmlspec.Transition{
					{Cond: "!last", Next: "RUN"},
					{Next: "END"},
				},
			},
			{Name: "END", Final: true, Assigns: []xmlspec.Assign{{Signal: "done", Value: 1}}},
		},
	}
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	el, err := netlist.Elaborate(sim, clk, dp, fsm, netlist.Options{
		InitData: map[string][]int64{"src": stimulus},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := hades.NewVCDWriter(f)
	w.AddAll(sim)
	w.Header("acc")
	if _, err := el.RunToCompletion(10, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestVCDDiffIdentical(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.vcd")
	b := filepath.Join(dir, "b.vcd")
	stim := []int64{5, 10, 20, 40}
	dumpHandcrafted(t, a, stim)
	dumpHandcrafted(t, b, stim)
	var sb strings.Builder
	diffs, err := run([]string{a, b}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if diffs != 0 || !strings.Contains(sb.String(), "identical signal activity") {
		t.Fatalf("diffs=%d out=%q", diffs, sb.String())
	}
}

func TestVCDDiffDiverging(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.vcd")
	b := filepath.Join(dir, "b.vcd")
	dumpHandcrafted(t, a, []int64{5, 10, 20, 40})
	dumpHandcrafted(t, b, []int64{5, 10, 21, 40})
	var sb strings.Builder
	diffs, err := run([]string{a, b}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if diffs == 0 {
		t.Fatalf("diverging stimulus must diff, out=%q", sb.String())
	}
	if !strings.Contains(sb.String(), "difference(s)") {
		t.Fatalf("out=%q", sb.String())
	}
	// -max bounds the report.
	var capped strings.Builder
	cappedDiffs, err := run([]string{"-max", "1", a, b}, &capped)
	if err != nil {
		t.Fatal(err)
	}
	if cappedDiffs != 1 {
		t.Fatalf("capped diffs=%d want 1", cappedDiffs)
	}
}

func TestVCDDiffErrors(t *testing.T) {
	if _, err := run([]string{"only-one.vcd"}, &strings.Builder{}); err == nil {
		t.Error("one argument must fail with usage")
	}
	if _, err := run([]string{"nope1.vcd", "nope2.vcd"}, &strings.Builder{}); err == nil {
		t.Error("unreadable inputs must fail")
	}
}
