// Command xml2dot translates any of the three XML dialects to Graphviz
// dot on stdout — the paper's "to dotty" arrows, through the flow
// translation layer.
//
// Usage:
//
//	xml2dot -in build/fdct_p1.dp.xml > fdct_p1.dot
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/flow"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // usage already printed, clean exit
		}
		fmt.Fprintln(os.Stderr, "xml2dot:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("xml2dot", flag.ContinueOnError)
	in := fs.String("in", "", "input XML file (datapath, fsm or rtg)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	dot, err := flow.TranslateDocument(data, "dot")
	if err != nil {
		return err
	}
	_, err = io.WriteString(out, dot)
	return err
}
