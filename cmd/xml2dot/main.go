// Command xml2dot translates any of the three XML dialects to Graphviz
// dot on stdout — the paper's "to dotty" arrows.
//
// Usage:
//
//	xml2dot -in build/fdct_p1.dp.xml > fdct_p1.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/xsl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xml2dot:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "input XML file (datapath, fsm or rtg)")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("-in is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	root, err := xsl.Parse(data)
	if err != nil {
		return err
	}
	sheet, err := xsl.ForDocument(root)
	if err != nil {
		return err
	}
	out, err := xsl.Transform(sheet, root)
	if err != nil {
		return err
	}
	_, err = os.Stdout.WriteString(out)
	return err
}
