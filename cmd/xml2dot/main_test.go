package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/xmlspec"
)

// The fixtures mirror examples/handcrafted: the stimulus-fed
// accumulator datapath and its two-state controller, written through
// the same XML dialects the example validates against.
func writeHandcrafted(t *testing.T) (dpPath, fsmPath string) {
	t.Helper()
	dp := &xmlspec.Datapath{
		Name:  "acc",
		Width: 32,
		Operators: []xmlspec.Operator{
			{ID: "src", Type: "stim"},
			{ID: "r_acc", Type: "reg"},
			{ID: "add0", Type: "add"},
			{ID: "cap", Type: "sink"},
		},
		Connections: []xmlspec.Connection{
			{From: "r_acc.q", To: "add0.a"},
			{From: "src.out", To: "add0.b"},
			{From: "add0.y", To: "r_acc.d"},
			{From: "r_acc.q", To: "cap.in"},
		},
		Controls: []xmlspec.Control{
			{Name: "en_acc", Targets: []xmlspec.ControlTo{{Port: "r_acc.en"}}},
			{Name: "en_cap", Targets: []xmlspec.ControlTo{{Port: "cap.en"}}},
		},
		Statuses: []xmlspec.Status{{Name: "last", From: "src.last"}},
	}
	fsm := &xmlspec.FSM{
		Name:    "acc_ctl",
		Inputs:  []xmlspec.FSMSignal{{Name: "last"}},
		Outputs: []xmlspec.FSMSignal{{Name: "en_acc"}, {Name: "en_cap"}, {Name: "done"}},
		States: []xmlspec.State{
			{
				Name: "RUN", Initial: true,
				Assigns: []xmlspec.Assign{
					{Signal: "en_acc", Value: 1},
					{Signal: "en_cap", Value: 1},
				},
				Transitions: []xmlspec.Transition{
					{Cond: "!last", Next: "RUN"},
					{Next: "END"},
				},
			},
			{Name: "END", Final: true, Assigns: []xmlspec.Assign{{Signal: "done", Value: 1}}},
		},
	}
	dir := t.TempDir()
	dpDoc, err := xmlspec.Marshal(dp)
	if err != nil {
		t.Fatal(err)
	}
	fsmDoc, err := xmlspec.Marshal(fsm)
	if err != nil {
		t.Fatal(err)
	}
	dpPath = filepath.Join(dir, "acc.dp.xml")
	fsmPath = filepath.Join(dir, "acc_ctl.fsm.xml")
	if err := os.WriteFile(dpPath, dpDoc, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fsmPath, fsmDoc, 0o644); err != nil {
		t.Fatal(err)
	}
	return dpPath, fsmPath
}

func TestXML2DotSmoke(t *testing.T) {
	dpPath, fsmPath := writeHandcrafted(t)
	for _, path := range []string{dpPath, fsmPath} {
		var sb strings.Builder
		if err := run([]string{"-in", path}, &sb); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out := sb.String()
		if !strings.Contains(out, "digraph") {
			t.Errorf("%s: output is not dot:\n%s", path, out)
		}
	}
	// The datapath graph must mention its operators.
	var sb strings.Builder
	if err := run([]string{"-in", dpPath}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, node := range []string{"r_acc", "add0", "cap"} {
		if !strings.Contains(sb.String(), node) {
			t.Errorf("dot output lacks operator %q", node)
		}
	}
}

func TestXML2DotErrors(t *testing.T) {
	if err := run([]string{}, &strings.Builder{}); err == nil {
		t.Error("missing -in must fail")
	}
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "nope.xml")}, &strings.Builder{}); err == nil {
		t.Error("unreadable input must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.xml")
	if err := os.WriteFile(bad, []byte("<mystery/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bad}, &strings.Builder{}); err == nil {
		t.Error("unknown document root must fail")
	}
}
