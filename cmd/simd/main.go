// Command simd serves the verification flow over HTTP:
// simulation-as-a-service on a pool of prepared designs, so repeated
// verify/sweep/bench requests for the same workload instance
// reset-and-replay a cached session instead of re-elaborating.
//
// Endpoints (see docs/SERVER.md for the protocol tour):
//
//	POST /v1/verify   one verified round per requested round
//	POST /v1/sweep    N verified reset-and-replay rounds
//	POST /v1/bench    N unverified rounds, for throughput
//	GET  /statsz      admission, pool and throughput counters
//	GET  /healthz     liveness
//
// Run endpoints take an api.Request JSON body and stream NDJSON
// api.RunRecord lines; overload answers 429 with a Retry-After header.
// SIGINT/SIGTERM drain gracefully: in-flight streams finish, new
// requests are refused.
//
// Usage:
//
//	simd                          # serve on :8047 with defaults
//	simd -addr :9000 -workers 16  # bounded worker pool
//	simd -max-sessions 4          # LRU session pool capacity
//	simd -rate 50 -burst 100      # token-bucket admission
//	simd -backend heapref         # default simulator backend
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/flow"
	"repro/internal/simd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr  = flag.String("addr", ":8047", "listen address")
		drain = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests")
		cfg   simd.Config
	)
	flag.IntVar(&cfg.Workers, "workers", 0, "concurrently executing requests (0 = one per CPU)")
	flag.IntVar(&cfg.MaxQueue, "queue", 0, "admitted requests waiting for a worker (0 = workers, negative = none)")
	flag.IntVar(&cfg.MaxSessions, "max-sessions", 0, "prepared-session pool capacity, LRU-evicted (0 = 8)")
	flag.IntVar(&cfg.SessionInFlight, "session-inflight", 0, "concurrent requests per pooled session (0 = workers)")
	flag.Float64Var(&cfg.Rate, "rate", 0, "token-bucket admission rate in requests/sec (0 = unlimited)")
	flag.IntVar(&cfg.Burst, "burst", 0, "token-bucket depth (0 = ceil(rate), min 1)")
	flag.IntVar(&cfg.MaxRounds, "max-rounds", 0, "rounds cap per request (0 = 4096)")
	flag.StringVar(&cfg.Backend, "backend", "", "default simulator backend: "+strings.Join(flow.BackendNames(), ", "))
	flag.Parse()

	if cfg.Backend != "" {
		if _, err := flow.LookupBackend(cfg.Backend); err != nil {
			return err
		}
	}

	srv := &http.Server{Addr: *addr, Handler: simd.New(cfg)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("simd: serving on %s", *addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately via default handling
	log.Printf("simd: draining (up to %s)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("simd: drained, bye")
	return nil
}
