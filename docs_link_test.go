package repro_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks walks README.md and docs/ and verifies that every
// relative link target exists, so the architecture docs cannot silently
// rot as files move. External (scheme-qualified) links, pure anchors
// and targets that resolve outside the repository (e.g. the CI badge's
// GitHub-relative path) are skipped — only repo-local references are
// checkable offline. CI runs this as the "markdown link check" step of
// the lint job.
func TestMarkdownLinks(t *testing.T) {
	root, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	files := []string{"README.md"}
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, rel)
	}
	if len(files) < 5 { // README + ARCHITECTURE/FLOW/KERNEL/WORKLOADS
		t.Fatalf("only %d markdown files found; docs/ missing?", len(files))
	}
	checked := 0
	for _, file := range files {
		doc, err := os.ReadFile(filepath.Join(root, file))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(doc), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; not checkable offline
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue // pure in-page anchor
			}
			resolved := filepath.Join(root, filepath.Dir(file), target)
			rel, err := filepath.Rel(root, resolved)
			if err != nil || strings.HasPrefix(rel, "..") {
				continue // escapes the repo (e.g. the Actions badge); not checkable
			}
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%s)", file, m[1], rel)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no repo-local links checked; the doc set should cross-reference itself")
	}
}
