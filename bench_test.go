package repro_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/hades"
	"repro/internal/hdl"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/netlist"
	"repro/internal/operators"
	"repro/internal/workloads"
	"repro/internal/xmlspec"
	"repro/internal/xsl"
)

// --- Table I ------------------------------------------------------------
//
// Each BenchmarkTableI_* regenerates one row of the paper's Table I:
// compile the workload, simulate the generated architecture with the
// paper's parameters (FDCT: 4,096-pixel image = 64 DCT blocks, three
// SRAMs; Hamming: a codeword stream), verify against the golden
// algorithm, and report the size columns as benchmark metrics. The
// simulation wall time is the benchmark's ns/op counterpart of the
// paper's "Simulation time (s)" column.

func fdctTestCase(name string, pixels int, two bool) core.TestCase {
	src, sizes, args, inputs := workloads.FDCTCase(name, pixels, two, 42)
	return core.TestCase{Name: name, Source: src, Func: "fdct",
		ArraySizes: sizes, ScalarArgs: args, Inputs: inputs}
}

func hammingTestCase(words int) core.TestCase {
	sizes, args, inputs, expected := workloads.HammingCase(words, 9)
	return core.TestCase{Name: "hamming", Source: workloads.HammingSource, Func: "hamming",
		ArraySizes: sizes, ScalarArgs: args, Inputs: inputs,
		Expected: map[string][]int64{"out": expected}}
}

func runTableIRow(b *testing.B, tc core.TestCase) {
	b.Helper()
	var last *core.CaseResult
	for i := 0; i < b.N; i++ {
		res, err := core.RunCase(tc, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		if !res.Passed {
			b.Fatalf("verification failed: %v", res.Failed())
		}
		last = res
	}
	ops, cycles := 0, uint64(0)
	dpLoC, fsmLoC, javaLoC := 0, 0, 0
	for _, p := range last.Partitions {
		ops += p.Operators
		cycles += p.Cycles
		dpLoC += p.XMLDatapathLoC
		fsmLoC += p.XMLFSMLoC
		javaLoC += p.JavaFSMLoC
	}
	b.ReportMetric(float64(ops), "operators")
	b.ReportMetric(float64(cycles), "cycles")
	b.ReportMetric(float64(last.SourceLoC), "loJava")
	b.ReportMetric(float64(dpLoC), "loXMLdp")
	b.ReportMetric(float64(fsmLoC), "loXMLfsm")
	b.ReportMetric(float64(javaLoC), "loJavaFSM")
	b.ReportMetric(float64(len(last.Partitions)), "configs")
}

func BenchmarkTableI_FDCT1(b *testing.B) {
	runTableIRow(b, fdctTestCase("fdct1", 4096, false))
}

func BenchmarkTableI_FDCT2(b *testing.B) {
	runTableIRow(b, fdctTestCase("fdct2", 4096, true))
}

func BenchmarkTableI_Hamming(b *testing.B) {
	runTableIRow(b, hammingTestCase(64))
}

// --- In-text scaling claim ----------------------------------------------
//
// "With images of 65,536 and 345,600 pixels, FDCT1 is simulated in 1 and
// 6.5 minutes, respectively." — simulation time must grow linearly with
// the pixel count. BenchmarkFDCT1_Scaling regenerates the series for the
// paper's three image sizes.

func BenchmarkFDCT1_Scaling(b *testing.B) {
	for _, pixels := range []int{4096, 65536, 345600} {
		b.Run(fmt.Sprintf("pixels=%d", pixels), func(b *testing.B) {
			tc := fdctTestCase("fdct1", pixels, false)
			for i := 0; i < b.N; i++ {
				res, err := core.RunCase(tc, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Err != nil || !res.Passed {
					b.Fatalf("failed: %v %v", res.Err, res.Failed())
				}
				b.ReportMetric(float64(res.Partitions[0].Cycles), "cycles")
				b.ReportMetric(float64(pixels)/res.SimWall.Seconds(), "pixels/s")
			}
		})
	}
}

// --- Figure 1 ------------------------------------------------------------
//
// Figure 1 is the infrastructure diagram; BenchmarkFigure1Translations
// times its translation arrows (datapath/fsm/rtg XML → dot, hds, java)
// on the FDCT1 design. TestFigure1FlowComplete in flow_test.go executes
// every arrow once and checks the outputs.

func BenchmarkFigure1Translations(b *testing.B) {
	tc := fdctTestCase("fdct1", 4096, false)
	design := compileDesign(b, tc)
	dpDoc := marshal(b, design.Datapaths["fdct_p1"])
	fsmDoc := marshal(b, design.FSMs["fdct_p1_ctl"])
	rtgDoc := marshal(b, design.RTG)

	b.Run("datapath-to-dot", benchTransform(xsl.DatapathToDot(), dpDoc))
	b.Run("datapath-to-hds", benchTransform(xsl.DatapathToHDS(), dpDoc))
	b.Run("fsm-to-dot", benchTransform(xsl.FSMToDot(), fsmDoc))
	b.Run("fsm-to-java", benchTransform(xsl.FSMToJava(), fsmDoc))
	b.Run("rtg-to-dot", benchTransform(xsl.RTGToDot(), rtgDoc))
	b.Run("rtg-to-java", benchTransform(xsl.RTGToJava(), rtgDoc))
	b.Run("datapath-to-vhdl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hdl.VHDLDatapath(design.Datapaths["fdct_p1"], nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("datapath-to-verilog", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hdl.VerilogDatapath(design.Datapaths["fdct_p1"], nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchTransform(sheet *xsl.Stylesheet, doc []byte) func(*testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xsl.TransformBytes(sheet, doc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Suite parallelism ----------------------------------------------------
//
// BenchmarkSuiteParallel tracks the runner's scaling: the same
// multi-case suite sharded across 1/2/4/8 workers. The reported
// "speedup" metric is sum-of-case-walls over suite wall; the ns/op
// trajectory across the sub-benchmarks is the paper's "feasible time"
// claim as a perf series.
func BenchmarkSuiteParallel(b *testing.B) {
	suite := &core.Suite{Name: "parallel"}
	for i := 0; i < 8; i++ {
		suite.Cases = append(suite.Cases, fdctTestCase(fmt.Sprintf("fdct1_%d", i), 1024, false))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := &core.Runner{Workers: workers}
			var speedup float64
			for i := 0; i < b.N; i++ {
				res := r.Run(context.Background(), suite, core.Options{})
				if !res.Passed() {
					b.Fatalf("suite failed: %+v", res.Results)
				}
				speedup = res.Speedup
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// --- Ablations ------------------------------------------------------------
//
// Design-choice ablations called out in DESIGN.md: monolithic vs
// partitioned simulation, probe overhead, golden-reference cost, and the
// raw event-kernel throughput that underlies all simulation times.

// BenchmarkAblationMonolithicVsPartitioned contrasts FDCT1 and FDCT2
// end-to-end (the paper's 6.9s vs 2.9+2.9s comparison).
func BenchmarkAblationMonolithicVsPartitioned(b *testing.B) {
	b.Run("monolithic", func(b *testing.B) {
		tc := fdctTestCase("fdct1", 1024, false)
		for i := 0; i < b.N; i++ {
			mustPass(b, tc)
		}
	})
	b.Run("partitioned", func(b *testing.B) {
		tc := fdctTestCase("fdct2", 1024, true)
		for i := 0; i < b.N; i++ {
			mustPass(b, tc)
		}
	})
}

// BenchmarkAblationProbeOverhead measures the cost of full observability
// (a probe on every wire) versus a bare run.
func BenchmarkAblationProbeOverhead(b *testing.B) {
	tc := fdctTestCase("fdct1", 512, false)
	design := compileDesign(b, tc)
	run := func(b *testing.B, opts ...flow.Option) {
		pipe, err := flow.New(opts...)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			e, err := pipe.ElaborateDesign(design)
			if err != nil {
				b.Fatal(err)
			}
			for name, words := range tc.Inputs {
				if err := e.LoadMemory(name, padded(words, tc.ArraySizes[name])); err != nil {
					b.Fatal(err)
				}
			}
			res, err := pipe.Simulate(e)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Completed {
				b.Fatal("incomplete")
			}
		}
	}
	b.Run("bare", func(b *testing.B) { run(b) })
	b.Run("probe-every-wire", func(b *testing.B) {
		run(b, flow.WithObserver(probeAllObserver{}))
	})
}

// BenchmarkAblationGoldenReference contrasts the two sides of the
// verification contract on the same workload: the event-driven RTL
// simulation versus the direct golden-algorithm execution.
func BenchmarkAblationGoldenReference(b *testing.B) {
	tc := fdctTestCase("fdct1", 4096, false)
	b.Run("simulator", func(b *testing.B) {
		design := compileDesign(b, tc)
		pipe, err := flow.New()
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			e, err := pipe.ElaborateDesign(design)
			if err != nil {
				b.Fatal(err)
			}
			for name, words := range tc.Inputs {
				if err := e.LoadMemory(name, padded(words, tc.ArraySizes[name])); err != nil {
					b.Fatal(err)
				}
			}
			if res, err := pipe.Simulate(e); err != nil || !res.Completed {
				b.Fatalf("err=%v", err)
			}
		}
	})
	b.Run("interpreter", func(b *testing.B) {
		prog, err := lang.Parse(tc.Source)
		if err != nil {
			b.Fatal(err)
		}
		f, _ := prog.FindFunc(tc.Func)
		for i := 0; i < b.N; i++ {
			mems := map[string][]int64{}
			for name, depth := range tc.ArraySizes {
				mems[name] = padded(tc.Inputs[name], depth)
			}
			if _, err := interp.Run(f, mems, tc.ScalarArgs, interp.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEventKernelThroughput measures raw kernel event throughput on
// a register pipeline — the substrate number behind every simulation
// time in the evaluation.
func BenchmarkEventKernelThroughput(b *testing.B) {
	const stages = 64
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	sigs := make([]*hades.Signal, stages+1)
	for i := range sigs {
		sigs[i] = sim.NewSignal(fmt.Sprintf("s%d", i), 32)
	}
	reg, _ := operators.DefaultRegistry().Lookup("reg")
	for i := 0; i < stages; i++ {
		if _, err := reg.Build(sim, fmt.Sprintf("r%d", i), operators.Params{Width: 32},
			map[string]*hades.Signal{"clk": clk, "d": sigs[i], "q": sigs[i+1]}); err != nil {
			b.Fatal(err)
		}
	}
	clock := hades.NewClock("clk", clk, 10, hades.TimeMax)
	clock.Start(sim)
	b.ResetTimer()
	var fed int64
	for i := 0; i < b.N; i++ {
		fed++
		sim.Set(sigs[0], fed, 0)
		if _, err := sim.Run(sim.Now() + 10); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sim.Stats().Events)/float64(b.N), "events/op")
}

// --- helpers ---------------------------------------------------------------

func compileDesign(b *testing.B, tc core.TestCase) *xmlspec.Design {
	b.Helper()
	design, err := core.CompileOnly(tc, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return design
}

func marshal(b *testing.B, v interface{}) []byte {
	b.Helper()
	doc, err := xmlspec.Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	return doc
}

func mustPass(b *testing.B, tc core.TestCase) {
	b.Helper()
	res, err := core.RunCase(tc, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if res.Err != nil || !res.Passed {
		b.Fatalf("failed: %v %v", res.Err, res.Failed())
	}
}

func padded(words []int64, depth int) []int64 {
	out := make([]int64, depth)
	copy(out, words)
	return out
}

// probeAllObserver attaches a probe to every wire of each elaborated
// configuration (the full-observability ablation).
type probeAllObserver struct{ flow.BaseObserver }

func (probeAllObserver) ConfigElaborated(_ string, el *netlist.Elaboration) { el.ProbeAll(0) }
